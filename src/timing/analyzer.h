// Stage-based static timing analysis on top of AWE -- the application the
// paper positions itself inside (Section II: "A typical approach to timing
// analysis of MOS integrated circuits is to divide the design into stages,
// with each stage consisting of a gate output and the interconnect path
// which it drives", with MOSFETs modeled as approximate linear resistors
// and capacitors).
//
// The model:
//   * a Gate is a linear driver: switching resistance, input pin
//     capacitance, intrinsic delay;
//   * a Net is a named piece of linear interconnect (R/C/L elements over
//     local node names) with one driver hookup point and one hookup point
//     per sink;
//   * the Design wires gate outputs to nets and net sinks to gate inputs.
//
// Analysis levelizes the stage DAG into Kahn wavefronts: level 0 holds
// the primary-input gates, and every other gate sits one past its
// latest-level driver.  All stages of one wavefront are independent --
// their drivers' arrivals and slews are final -- so they are evaluated
// concurrently on a fixed-size thread pool, each stage building its own
// circuit -- driver resistance, interconnect, sink input capacitances --
// applying a finite-slew ramp at the driver (the slew propagated from
// the previous stage, Section 4.3's ramp handling), running one batch
// AWE solve over all of the net's sinks (Engine::approximate_all: one LU
// and moment set per net, one cheap match per sink), and extracting
// per-sink delay (threshold crossing) and output slew (20%-80%).
// Results land in per-stage slots and are reduced serially in a fixed
// order (gates by name within a level, nets in insertion order, sinks by
// name), so arrival times, the critical path, and the stage list are
// identical for every thread count.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "circuit/circuit.h"
#include "core/engine.h"
#include "core/stats.h"
#include "la/low_rank.h"

namespace awesim::core {
class CancelToken;
}

namespace awesim::timing {

/// Linearized switching gate (the Section II MOSFET approximation).
struct Gate {
  std::string name;
  double drive_resistance = 1e3;   // ohms
  double input_capacitance = 5e-15;  // farads, per input pin
  double intrinsic_delay = 0.0;    // seconds, added at the gate output
};

/// One element of a net's parasitics, over net-local node names.
/// The reserved node name "DRV" is the driver hookup; sink hookups are
/// named by the sink pin they connect to.
struct NetElement {
  enum class Kind { Resistor, Capacitor, Inductor } kind;
  std::string node_a;
  std::string node_b;  // "0" for ground
  double value = 0.0;
};

/// A reduced boundary-block macromodel over net-local node names -- the
/// timing-layer mirror of circuit::MacroElement, produced by
/// reduce::reduce_net when a net's interior collapses into a
/// moment-matched equivalent.  Hand-built nets never carry these.
struct NetMacro {
  /// Net-local names of the boundary ports, in stamp order ("DRV", then
  /// the sink hookup nodes).  Ground is never a port: the reducer folds
  /// interior-to-ground contributions into the stamp diagonals and
  /// refuses any net whose sink hookup is the ground node.
  std::vector<std::string> ports;
  /// Reduced internal unknowns appended after the ports.
  std::size_t states = 0;
  /// Row-major (ports.size()+states)^2 symmetric G/C stamps.
  std::vector<double> g;
  std::vector<double> c;
  /// Sums over the collapsed elements, so the analytic Elmore fallback
  /// of a reduced stage reproduces the flat stage's bound arithmetic.
  double sum_resistance = 0.0;
  double sum_capacitance = 0.0;
};

struct Net {
  std::string name;
  std::vector<NetElement> parasitics;
  /// Boundary-block macromodels stamped alongside the parasitics (only
  /// present on reduced nets; see src/reduce).
  std::vector<NetMacro> macros;
  /// Net-local node name where each sink gate input attaches.
  std::map<std::string, std::string> sink_node;  // sink gate -> node name
};

/// Which delay kernel answers each stage (see timing/delay_model.h for
/// the model descriptions and the engine-backed vs arithmetic split).
enum class DelayModelKind {
  Awe = 0,      // full q-pole AWE with the degradation ladder (default)
  ElmoreBound,  // lumped first-order bound, no linear solve
  TwoPole,      // Penfield-Rubinstein-style fixed two-pole match
  TableLookup,  // characterized normalized-ratio lookup table
};

const char* to_string(DelayModelKind kind);

struct AnalysisOptions {
  /// Supply swing and measurement thresholds.
  double swing = 5.0;
  double delay_threshold_fraction = 0.5;  // 50% delay
  double slew_low_fraction = 0.2;
  double slew_high_fraction = 0.8;

  /// AWE order for every stage (auto-escalated if unstable).
  int order = 3;

  /// Slew of the primary-input transition.
  double input_slew = 0.1e-9;

  /// Worker threads for stage evaluation: 1 runs the serial walk inline,
  /// 0 uses one thread per hardware core.  The report is bit-identical
  /// for every value (levelized wavefronts, fixed reduction order).
  int threads = 0;

  /// Run the src/check static lint pipeline over every stage circuit
  /// before handing it to the AWE engine.  A stage whose lint finds
  /// Error-severity problems (a voltage-source/inductor loop, a current
  /// source with no DC return path, nonphysical element values) never
  /// enters the engine: it degrades straight to the analytic Elmore
  /// bound, and its StageFailed diagnostic plus the lint records name
  /// the offending elements instead of a bare singular-matrix error.
  /// Warnings never change the timing numbers; they are tallied into
  /// Stats::lint_warnings only.  Under a Session, lint reports are
  /// cached by circuit content alongside the LU factorizations.
  ///
  /// The documented escape hatch: set false to skip the pre-flight and
  /// feed stages to the engine raw (benches measuring bare evaluation
  /// cost, or deliberately pathological what-if experiments).
  bool preflight_lint = true;

  /// Run the graph-scope pre-flight audit when levelization fails: the
  /// thrown error is a typed core::DiagnosticError carrying a
  /// CombinationalCycle record with the full ordered loop path (gate ->
  /// gate -> ... -> gate), instead of a bare std::invalid_argument
  /// naming nothing.  Costs nothing on healthy designs -- the audit
  /// graph walk only runs after levelization has already failed.  The
  /// escape hatch mirrors preflight_lint: set false to restore the
  /// legacy untyped throw (callers written against the pre-audit
  /// exception contract).  The full audit pass -- conditioning oracle,
  /// fanout/reconvergence rules, repetition analysis -- lives in
  /// audit::audit_design and the awesim_audit CLI.
  bool preflight_audit = true;

  /// Which delay kernel evaluates each stage.  The default is the full
  /// AWE engine -- bit-identical to the pre-seam analyzer.  The kind is
  /// part of the stage-result cache key, so a Session can interleave
  /// models without cross-talk.  Arithmetic models (ElmoreBound,
  /// TableLookup) assemble no matrices and skip the pre-flight lint.
  DelayModelKind delay_model = DelayModelKind::Awe;

  /// Required arrival time at every endpoint, for the slack/RAT pass
  /// (timing/graph.h).  NaN (the default) floats the requirement to the
  /// latest endpoint arrival, so worst_slack == 0 and slacks rank
  /// criticality relative to the critical path.  Set a clock period to
  /// get real signed slacks (and meaningful what-if slack deltas).
  double required_time = std::numeric_limits<double>::quiet_NaN();

  /// Cooperative cancellation (core/cancel.h), consulted at wavefront
  /// and stage granularity: per-stage deadline checks before each
  /// evaluation, budget charges (one unit per stage actually evaluated,
  /// cache-served stages are free) in the serial pre-pass.  nullptr --
  /// the default -- runs unbounded.  A token that never trips leaves
  /// the report bit-identical to an un-tokened run; a tripped token
  /// aborts the analysis with a DeadlineExceeded/BudgetExceeded
  /// DiagnosticError and leaves any attached stage cache valid (only
  /// fully evaluated stages are ever published).  Deliberately absent
  /// from every cache key, like `threads`: the token describes the
  /// request, not the answer.  Non-owning; the caller keeps the token
  /// alive for the duration of the call.
  core::CancelToken* cancel = nullptr;
};

struct SinkTiming {
  std::string gate;         // receiving gate
  double stage_delay = 0.0;  // driver switch -> threshold at the sink
  double slew = 0.0;         // 20-80% rise time at the sink
  double arrival = 0.0;      // absolute arrival time at the sink input
};

struct StageTiming {
  std::string driver_gate;
  std::string net;
  double input_arrival = 0.0;
  std::vector<SinkTiming> sinks;
  int awe_order_used = 0;

  /// True when any sink of this stage was answered below full AWE
  /// quality (engine degradation ladder) or the whole stage fell back
  /// to the analytic Elmore bound after an evaluation failure.
  bool degraded = false;

  /// True when the full AWE evaluation of the stage threw and the
  /// analytic Elmore bound was substituted; the wavefront continued.
  bool failed = false;

  /// Everything that went wrong (or was gracefully recovered) while
  /// evaluating this stage, in deterministic order.
  core::Diagnostics diagnostics;
};

struct TimingReport {
  std::vector<StageTiming> stages;
  /// Arrival time at each gate input (max over fan-in).
  std::map<std::string, double> gate_arrival;
  /// Latest-arriving endpoint and the chain of gates leading to it.
  double critical_delay = 0.0;
  std::vector<std::string> critical_path;

  /// Gates whose stage inputs switch at t = 0 (declared primary inputs
  /// plus zero-fan-in gates) -- the wave-0 sources, name-sorted.  The
  /// timing graph pins these to arrival 0 when it re-propagates.
  std::vector<std::string> source_gates;

  /// Slack at each gate input pin, from the backward required-arrival
  /// pass over the timing graph (required per AnalysisOptions::
  /// required_time; NaN floats it to the latest endpoint arrival).
  std::map<std::string, double> gate_slack;

  /// Minimum slack over all endpoints, and the endpoint holding it.
  /// 0 by construction when required_time floats.
  double worst_slack = 0.0;
  std::string worst_slack_endpoint;

  /// Number of Kahn wavefronts the stage DAG levelized into.
  std::size_t levels = 0;

  /// Stages answered below full AWE quality (order step-down, Elmore
  /// fallback) but with a usable bound.
  std::size_t degraded_stages = 0;

  /// Stages whose AWE evaluation threw entirely; each carries the
  /// analytic Elmore bound and a StageFailed diagnostic instead of
  /// aborting the analysis.
  std::size_t failed_stages = 0;

  /// All stage diagnostics, concatenated in the deterministic stage
  /// order (identical for every thread count).
  core::Diagnostics diagnostics;

  /// AWE cost counters summed over all stages in deterministic stage
  /// order (factorizations, substitutions, matches, per-phase time).
  core::Stats awe_stats;

  /// End-to-end wall time of analyze().
  double wall_seconds = 0.0;
};

class Design;
class Session;

namespace detail {
class StageCache;

/// Per-net scratch a Session keeps between analyze() calls: memoized
/// cache-key bytes (serializing a kilo-element net's key dominates a
/// fully warm lookup) and the value-delta journal that feeds the
/// low-rank warm path.  Owned by the Session, read and refreshed by
/// analyze_design's serial passes; never touched by pool threads.
struct StageHint {
  /// Key memo: result_key/content_key below were serialized from the
  /// current net content.  Invalidated by every mutation of the net (or
  /// of anything its keys depend on) and by an options rebind; the memo
  /// only short-circuits serialization -- cache lookups still run, so
  /// corruption checks and counters are unchanged.
  bool keys_valid = false;
  std::uint64_t in_slew_bits = 0;  // result keys depend on the input slew
  std::string result_key;
  std::string content_key;

  /// Delta journal: donor_key is the content key this stage last
  /// factored (or exactly adopted) under; deltas lists (element name,
  /// donor-time value) for every value mutated since.  Reset whenever a
  /// mutation is not expressible as a value delta (topology edits).
  bool donor_valid = false;
  std::string donor_key;
  std::vector<std::pair<std::string, double>> deltas;
};

/// The Session-to-analyzer channel for warm-path machinery that must not
/// leak into the public AnalysisOptions (which is part of every cache
/// key).  `stages` is indexed like Design's net list.
struct SessionHints {
  bool low_rank = false;
  la::LowRankOptions low_rank_options;
  /// Stages with fewer parasitic elements than this always take the
  /// exact path: below it a fresh factorization costs no more than the
  /// corrected solve, and tiny stages are where exactness tests live.
  std::size_t min_stage_elements = 64;
  std::vector<StageHint>* stages = nullptr;
};

/// The one analysis walk, shared by Design::analyze (cache == nullptr:
/// every stage evaluates fresh) and timing::Session (persistent
/// StageCache: stages whose result key hits are served from cache, in a
/// serial pre-pass; only misses run on the pool).  The report is
/// bit-identical between the two paths -- for the timing values, arrival
/// maps, critical path, degraded/failed flags, and diagnostics; the
/// awe_stats cost counters, phase breakdown, and wall_seconds reflect
/// the work actually performed and naturally differ on warm runs.
///
/// `hints` (Session-only, may be null) adds two warm-path layers on
/// top: memoized key bytes, and -- when hints->low_rank is set -- the
/// Sherman-Morrison evaluation plan for stages whose journal carries
/// value deltas against a cached donor factorization.  Low-rank results
/// are tolerance-equal to a fresh evaluation, never bit-equal, and are
/// cached under a distinct solver-kind key (see stage_cache.h).
TimingReport analyze_design(const Design& design,
                            const AnalysisOptions& options,
                            StageCache* cache,
                            SessionHints* hints = nullptr);
}  // namespace detail

/// A gate-level design: gates plus nets connecting them.
class Design {
 public:
  /// Add a gate.  Throws std::invalid_argument on duplicate names.
  void add_gate(Gate gate);

  /// Connect `driver` gate's output through `net` to the sinks listed in
  /// net.sink_node.  Sinks that name no known gate are design outputs.
  void add_net(std::string driver, Net net);

  /// Mark a gate as driven by a primary input (its input arrival is 0).
  void set_primary_input(const std::string& gate);

  /// Run the full analysis.  Throws std::invalid_argument for structural
  /// problems (unknown gates, combinational cycles).
  TimingReport analyze(const AnalysisOptions& options = {}) const;

  /// Read access for design-level transforms (src/reduce walks every
  /// net, rewrites its parasitics into macromodels, and rebuilds an
  /// equivalent Design through the public mutators above).
  const std::map<std::string, Gate>& gates() const { return gates_; }
  std::size_t net_count() const { return nets_.size(); }
  const Net& net_at(std::size_t i) const { return nets_.at(i).net; }
  const std::string& net_driver(std::size_t i) const {
    return nets_.at(i).driver;
  }
  const std::vector<std::string>& primary_inputs() const {
    return primary_inputs_;
  }

 private:
  struct NetInstance {
    std::string driver;
    Net net;
  };

  // Session mutates element values / topology in place (content-addressed
  // cache keys make explicit invalidation unnecessary); analyze_design is
  // the shared walk behind analyze().
  friend class Session;
  friend TimingReport detail::analyze_design(const Design&,
                                             const AnalysisOptions&,
                                             detail::StageCache*,
                                             detail::SessionHints*);

  std::map<std::string, Gate> gates_;
  std::vector<NetInstance> nets_;
  std::vector<std::string> primary_inputs_;
};

}  // namespace awesim::timing
