// K-worst path enumeration over the timing graph.
//
// Slack tells you *that* a design misses timing; paths tell you *why*.
// This is the SFXT-style query layer: precompute, per pin, the best
// possible completion to an allowed endpoint (the suffix value -- one
// reverse-topological sweep), then run a best-first search over partial
// paths whose priority is the exact final arrival (prefix arrival +
// suffix).  Because the bound is exact, paths pop in worst-first order:
// the K-th pop of a complete, filter-matching path is the K-th worst
// path, no enumerate-then-sort.
//
// Filters (the from/through/to triple of a timing query):
//   * from:    the path must start at a source pin owned by this gate;
//   * to:      the path must end at an endpoint owned by this gate/port;
//   * through: the path must visit every listed owner (up to 64).
// from/to prune the search space exactly (suffix values are computed
// against allowed endpoints only; unreachable pins get -inf and are
// never expanded).  through-points prune via a reachability mask (a pin
// survives only if, for every through-point, it can reach it or be
// reached from it) and are enforced exactly at emission; max_expansions
// bounds the search when filters are adversarial, and the result says
// whether it hit.
//
// Slack convention: every endpoint carries the same required time (see
// graph.h), so "worst slack" and "latest arrival" order identically;
// Path::slack = required(endpoint) - Path::arrival can go negative when
// a real clock constraint is set.
//
// Determinism: the enumeration is serial, the priority comparator
// totally orders candidates (arrival, then lexicographic arc sequence),
// and the graph it runs on is bit-identical across analyzer thread
// counts -- so the K-worst list is too (tests/test_paths.cpp pins this).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "timing/graph.h"

namespace awesim::core {
class CancelToken;
}

namespace awesim::timing {

struct PathQuery {
  /// How many worst paths to return.
  std::size_t k = 1;
  /// Source gate filter (empty = any source).
  std::string from;
  /// Endpoint owner filter (empty = any endpoint).
  std::string to;
  /// Owners the path must visit, all of them; at most 64.
  std::vector<std::string> through;
  /// Search cap: total candidate expansions before giving up (only
  /// reachable with adversarial through-filters on dense graphs).
  std::size_t max_expansions = 1u << 20;
  /// Cooperative cancellation (core/cancel.h), consulted once per
  /// candidate expansion: deadline checks plus one budget unit per
  /// expansion.  Unlike max_expansions -- which truncates and returns a
  /// correct prefix -- a tripped token throws DiagnosticError
  /// (DeadlineExceeded/BudgetExceeded): the service layer's contract is
  /// a structured error, not a silently shorter answer.  nullptr runs
  /// unbounded; results are identical when the token never trips.
  /// Non-owning; must outlive the query call.
  core::CancelToken* cancel = nullptr;
};

struct PathPoint {
  std::string pin;
  /// Arrival along this path at this pin (sum of arc delays so far --
  /// equals the node arrival only on the single worst path).
  double arrival = 0.0;
  /// Delay of the arc into this pin (0 for the path's first point).
  double delay = 0.0;
  /// Net carrying that arc; empty for gate arcs and the first point.
  std::string net;
};

struct Path {
  std::vector<PathPoint> points;
  std::string source;    // owner of the first pin
  std::string endpoint;  // owner of the last pin
  double arrival = 0.0;  // path arrival at the endpoint
  double slack = 0.0;    // required(endpoint) - arrival
  /// Any arc on the path came from a degraded stage (order step-down,
  /// Elmore fallback) -- the stage taint, propagated path-wide.
  bool degraded = false;
  /// Any arc came from a stage whose evaluation failed outright.
  bool failed = false;
  /// Arc indices into TimingGraph::arcs(), in path order (the identity
  /// used for duplicate detection).
  std::vector<std::size_t> arcs;
};

struct PathsResult {
  /// Worst-first: ascending slack (equivalently, descending arrival);
  /// ties break toward the lexicographically smaller arc sequence.
  std::vector<Path> paths;
  /// True when max_expansions stopped the search before K paths (or
  /// exhaustion); the returned prefix is still correct and ordered.
  bool truncated = false;
  /// Candidate expansions performed (observability / test budget).
  std::size_t expansions = 0;
};

/// Enumerate the K worst paths of `graph` under `query`.  Throws
/// std::invalid_argument for more than 64 through-points or an unknown
/// from/to/through name.
PathsResult k_worst_paths(const TimingGraph& graph,
                          const PathQuery& query = {});

}  // namespace awesim::timing
