// Content-addressed cache behind timing::Session -- the incremental
// re-analysis engine.
//
// AWE's pitch is reuse ("once the H-matrix is LU-factored the major task
// in computing even a large number of moments is trivial"), and the
// dominant interactive workload is not one cold analysis but thousands of
// nearly identical ones: driver sizing, R/C tweaks, ECO loops.  The cache
// exploits that redundancy at stage granularity with *content
// addressing*: every cached artifact is keyed by the exact serialized
// bytes of everything its value depends on, so a mutation never needs an
// explicit invalidation walk -- a changed element changes the key, the
// lookup misses, and the stage recomputes, while untouched stages (and
// downstream stages whose input slew is bitwise unchanged) keep hitting.
// Keys are compared as whole byte strings, never by hash, so collisions
// cannot alias two different circuits.
//
// Two key spaces:
//   * the *content key* covers exactly what the stage's MNA matrices are
//     built from (driver resistance, parasitic elements, sink hookups and
//     input caps) -- it addresses shared LU factorizations of G, adopted
//     into fresh MnaSystems via mna::MnaSystem::adopt_g_solver;
//   * the *result key* extends the content key with everything else the
//     stage timing depends on (gate/net names, intrinsic delay,
//     measurement thresholds, AWE order, the bitwise input slew) -- it
//     addresses finished StageTiming records, stored in stage-relative
//     form (input_arrival 0, sink arrivals = stage delays) and rehydrated
//     against the current input arrival on reuse.
//
// `AnalysisOptions::threads` is deliberately absent from every key: the
// report contract is bit-identical results at any thread count, so a
// cache entry must be address-equal across thread counts too.
//
// Stale-entry defense: each stored stage carries an FNV-1a checksum of
// its payload, verified on every hit.  A failed verification (or an armed
// `session.cache` fault rule -- see core/fault.h) drops the entry,
// records a CacheInvalidated diagnostic, and forces a recompute through
// the ordinary guarded evaluation path, so a corrupted cache degrades
// through the ladder instead of ever serving stale data.
//
// Determinism: the analyzer performs all lookups in a serial pre-pass
// (job order) and all insertions in a serial post-pass, so hit/miss
// counters and FIFO eviction order are pure functions of the work
// sequence -- bit-identical across thread counts.  The cache itself is
// confined to that serial thread; the mutex is a cheap guard, not a
// concurrency feature.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "check/lint.h"
#include "core/diagnostic.h"
#include "mna/system.h"
#include "timing/analyzer.h"

namespace awesim::timing::detail {

/// Serializes key material into exact bytes (doubles by bit pattern,
/// strings length-prefixed, single-byte tags separating sections) so two
/// keys are equal iff every contributing field is bitwise equal.
class KeyBuilder {
 public:
  KeyBuilder& tag(char t) {
    bytes_.push_back(t);
    return *this;
  }
  KeyBuilder& integer(std::uint64_t v);
  KeyBuilder& number(double v);
  KeyBuilder& text(std::string_view s);

  /// Pre-size the byte buffer (keys for kilo-element nets reach tens of
  /// kilobytes; growing a std::string through that is measurable).
  void reserve(std::size_t n) { bytes_.reserve(n); }

  const std::string& bytes() const { return bytes_; }
  std::string take() { return std::move(bytes_); }

 private:
  std::string bytes_;
};

/// FNV-1a over a byte string; the stage-payload checksum.
std::uint64_t fnv1a(std::string_view bytes);

/// Checksum of everything a cached StageTiming serves back.
std::uint64_t stage_checksum(const StageTiming& timing);

/// The circuit-content key (key space one above): addresses the LU
/// factorization shared between content-identical stage circuits.
std::string stage_content_key(const Gate& driver, const Net& net,
                              const std::map<std::string, Gate>& gates);

/// The stage-result key (key space two): content key plus names,
/// intrinsic delay, measurement options, order, and the bitwise input
/// slew.  Two jobs with equal result keys produce bitwise-equal
/// stage-relative timing.
std::string stage_result_key(const Gate& driver, const Net& net,
                             const std::map<std::string, Gate>& gates,
                             const AnalysisOptions& options, double in_slew);

/// The solver-kind variant of a result key for Sherman-Morrison-corrected
/// (low-rank) evaluations.  A corrected result is a deterministic
/// function of (result key, donor content, value deltas) but only
/// tolerance-equal to the exact result, so it must live under a key that
/// can never collide with the exact one -- and, keeping the documented
/// no-hash-aliasing guarantee, the donor content key and delta list
/// enter as exact bytes, not as digests.
std::string low_rank_result_key(
    const std::string& result_key, const std::string& donor_key,
    const std::vector<std::pair<std::string, double>>& deltas);

/// One shareable LU factorization of a stage circuit's G, with the
/// factor-time observables (gmin flag, diagnostics) that
/// MnaSystem::adopt_g_solver replays so adoption is invisible in the
/// report.
struct CachedFactorization {
  std::shared_ptr<const mna::Solver> solver;
  bool used_gmin = false;
  core::Diagnostics diagnostics;
};

/// One cached net reduction (src/reduce): the macro-replaced parasitic
/// view of a net's interconnect, stored name-agnostic -- the key covers
/// only the parasitics, the boundary node set, and the reduction
/// settings, so repeated cells (buses, clock trees) reduce once and
/// every instance rehydrates from this record.  `reduced == false` is a
/// negative cache: the net was examined and refused (too small, non-RC,
/// verification failure, injected fault), so instances analyze flat
/// without re-attempting the collapse; the refusal diagnostics ride
/// along for the report.
struct CachedReduction {
  /// Elements kept flat (the boundary-adjacent survivors).
  std::vector<NetElement> parasitics;
  /// Moment-matched boundary blocks replacing the interior.
  std::vector<NetMacro> macros;
  bool reduced = false;
  /// Interior nodes eliminated by the collapse (0 when refused).
  std::size_t interior_eliminated = 0;
  /// Reduction-time records (ReductionFallback /
  /// ReductionToleranceExceeded), replayed per rehydrated instance.
  core::Diagnostics diagnostics;
};

/// Checksum of everything a CachedReduction serves back (the FNV-1a
/// discipline of stage_checksum, applied to the reduction store).
std::uint64_t reduction_checksum(const CachedReduction& reduction);

/// The reduction key space: opens with '\x01','R' so it is disjoint
/// from exact result keys (which open with the content section's 'A'),
/// low-rank keys ('\x01','L'), and every other key space by byte two.
/// `content` is the caller-serialized byte string covering the net's
/// parasitics, boundary set, and reduction settings (see
/// reduce::reduction_content_key).
std::string reduction_key(std::string_view content);

class StageCache {
 public:
  struct Limits {
    /// FIFO-evicted caps: stage records are small, LU factors are the
    /// memory hog (a dense factor is O(n^2)), hence the asymmetry.
    std::size_t max_stage_entries = 4096;
    std::size_t max_factorizations = 16;
    /// Pre-flight lint reports are a handful of diagnostics each.
    std::size_t max_lint_entries = 4096;
    /// Net reductions: each entry is a few dense (ports+states)^2
    /// blocks -- heavier than a stage record, far lighter than an LU.
    std::size_t max_reduction_entries = 1024;
  };

  /// Cumulative lifetime counters (never reset by analyze calls;
  /// cleared by clear()).  hits/misses count individual lookups in both
  /// key spaces; invalidations count entries dropped by checksum
  /// verification; evictions count FIFO drops at the capacity limits.
  struct Counters {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t invalidations = 0;
    std::uint64_t evictions = 0;
    /// Pre-flight lint lookups, counted apart from hits/misses so the
    /// existing stage/LU accounting (and the tests pinning it) stays
    /// byte-for-byte what it was before the lint cache existed.
    std::uint64_t lint_hits = 0;
    std::uint64_t lint_misses = 0;
    /// Net-reduction lookups, likewise counted apart (the repeated-cell
    /// dedup tests pin these directly).
    std::uint64_t reduction_hits = 0;
    std::uint64_t reduction_misses = 0;
  };

  explicit StageCache(Limits limits) : limits_(limits) {}
  StageCache() : StageCache(Limits()) {}

  /// Looks up a stage-relative StageTiming.  Verifies the payload
  /// checksum (and consults the `session.cache` fault probe keyed by
  /// `net_name`); a failed verification drops the entry, appends a
  /// CacheInvalidated warning to `diags`, and reports a miss.
  std::optional<StageTiming> lookup_stage(const std::string& key,
                                          const std::string& net_name,
                                          core::Diagnostics* diags);

  /// Stores a stage-relative StageTiming (no-op if the key is already
  /// present -- the payload would be bitwise identical).
  void insert_stage(const std::string& key, StageTiming relative);

  std::shared_ptr<const CachedFactorization> lookup_factorization(
      const std::string& key);
  void insert_factorization(const std::string& key,
                            CachedFactorization factor);

  /// Pre-flight lint reports, keyed by the circuit-content key: the
  /// lint outcome is a pure function of the stage circuit's content, so
  /// it shares the factorization key space.  No checksum defense here --
  /// a lint report only gates *whether* a stage evaluates, and a stale
  /// entry cannot exist (content addressing); the fault-injection drill
  /// covers the stage records that actually carry timing.
  std::shared_ptr<const check::LintReport> lookup_lint(
      const std::string& key);
  void insert_lint(const std::string& key,
                   std::shared_ptr<const check::LintReport> report);

  /// Net reductions, keyed by reduction_key() bytes.  Verifies the
  /// payload checksum (and consults the `reduce.cache` fault probe
  /// keyed by `net_name`); a failed verification drops the entry,
  /// appends a CacheInvalidated warning to `diags`, and misses -- the
  /// caller re-reduces through the ordinary guarded path.
  std::shared_ptr<const CachedReduction> lookup_reduction(
      const std::string& key, const std::string& net_name,
      core::Diagnostics* diags);
  void insert_reduction(const std::string& key, CachedReduction reduction);

  Counters counters() const;
  std::size_t stage_entries() const;
  std::size_t factorization_entries() const;
  std::size_t lint_entries() const;
  std::size_t reduction_entries() const;
  void clear();

 private:
  struct StageEntry {
    StageTiming timing;
    std::uint64_t checksum = 0;
    std::uint64_t sequence = 0;
  };
  struct FactorEntry {
    std::shared_ptr<const CachedFactorization> factor;
    std::uint64_t sequence = 0;
  };
  struct LintEntry {
    std::shared_ptr<const check::LintReport> report;
    std::uint64_t sequence = 0;
  };
  struct ReductionEntry {
    std::shared_ptr<const CachedReduction> reduction;
    std::uint64_t checksum = 0;
    std::uint64_t sequence = 0;
  };

  void evict_stages_locked();
  void evict_factors_locked();
  void evict_lints_locked();
  void evict_reductions_locked();

  Limits limits_;
  mutable std::mutex mutex_;
  std::map<std::string, StageEntry> stages_;
  std::map<std::string, FactorEntry> factors_;
  std::map<std::string, LintEntry> lints_;
  std::map<std::string, ReductionEntry> reductions_;
  // FIFO queues of (sequence, key); a queued key is only evicted while
  // its sequence still matches the live entry (re-inserted keys requeue).
  std::deque<std::pair<std::uint64_t, std::string>> stage_order_;
  std::deque<std::pair<std::uint64_t, std::string>> factor_order_;
  std::deque<std::pair<std::uint64_t, std::string>> lint_order_;
  std::deque<std::pair<std::uint64_t, std::string>> reduction_order_;
  Counters counters_;
  std::uint64_t next_sequence_ = 0;
};

}  // namespace awesim::timing::detail
