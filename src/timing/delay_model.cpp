#include "timing/delay_model.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "circuit/circuit.h"
#include "core/engine.h"
#include "timing/stage_cache.h"

namespace awesim::timing {

const char* to_string(DelayModelKind kind) {
  switch (kind) {
    case DelayModelKind::Awe: return "awe";
    case DelayModelKind::ElmoreBound: return "elmore";
    case DelayModelKind::TwoPole: return "two_pole";
    case DelayModelKind::TableLookup: return "table";
  }
  return "?";
}

namespace detail {

double lumped_elmore_tau(const Gate& driver, const Net& net,
                         const std::map<std::string, Gate>& gates) {
  double r_total = driver.drive_resistance;
  double c_total = 0.0;
  for (const auto& e : net.parasitics) {
    if (e.kind == NetElement::Kind::Resistor && std::isfinite(e.value)) {
      r_total += std::abs(e.value);
    } else if (e.kind == NetElement::Kind::Capacitor &&
               std::isfinite(e.value)) {
      c_total += std::abs(e.value);
    }
  }
  // Reduced nets carry the collapsed interior's R/C totals on the
  // macro, keeping this bound identical to the flat net's.
  for (const auto& m : net.macros) {
    if (std::isfinite(m.sum_resistance)) r_total += m.sum_resistance;
    if (std::isfinite(m.sum_capacitance)) c_total += m.sum_capacitance;
  }
  for (const auto& [sink, node_name] : net.sink_node) {
    const auto it = gates.find(sink);
    if (it != gates.end() && it->second.input_capacitance > 0.0) {
      c_total += it->second.input_capacitance;
    }
  }
  return r_total * c_total;
}

StageEvaluation elmore_fallback_stage(const Gate& driver, const Net& net,
                                      const std::map<std::string, Gate>& gates,
                                      double input_arrival, double input_slew,
                                      const std::string& reason) {
  StageEvaluation outcome;
  StageTiming& st = outcome.timing;
  st.driver_gate = driver.name;
  st.net = net.name;
  st.input_arrival = input_arrival;
  st.degraded = true;
  st.failed = true;

  const double tau = lumped_elmore_tau(driver, net, gates);
  // Single-pole response: 50% crossing at ln 2 * tau, 20-80% rise over
  // ln 4 * tau; half the input slew stands in for the ramp delay.
  const double delay =
      driver.intrinsic_delay + std::log(2.0) * tau + 0.5 * input_slew;
  const double out_slew = std::max(std::log(4.0) * tau, input_slew);
  for (const auto& [sink, node_name] : net.sink_node) {
    SinkTiming sink_t;
    sink_t.gate = sink;
    sink_t.stage_delay = delay;
    sink_t.slew = out_slew;
    sink_t.arrival = input_arrival + delay;
    st.sinks.push_back(std::move(sink_t));
  }

  core::Diagnostic d;
  d.code = core::DiagCode::StageFailed;
  d.severity = core::Severity::Error;
  d.message = "stage evaluation failed (" + reason +
              "); substituted the lumped Elmore bound tau=" +
              std::to_string(tau) + "s";
  d.element = net.name;
  d.node = driver.name;
  st.diagnostics.push_back(std::move(d));

  outcome.stats.stages = 1;
  outcome.stats.failures = 1;
  return outcome;
}

}  // namespace detail

namespace {

// Build the stage circuit for one net: ramp source -> driver resistance ->
// parasitics -> sink input capacitances.  Returns the circuit and the
// circuit nodes of the driver point and each sink point.
struct StageCircuit {
  circuit::Circuit ckt;
  circuit::NodeId driver_node;
  std::map<std::string, circuit::NodeId> sink_nodes;
};

StageCircuit build_stage(const Gate& driver, const Net& net,
                         const std::map<std::string, Gate>& gates,
                         double swing, double slew) {
  StageCircuit sc;
  auto& ckt = sc.ckt;
  const auto vin = ckt.node("__in");
  ckt.add_vsource("Vdrv", vin, circuit::kGround,
                  slew > 0.0
                      ? circuit::Stimulus::ramp_step(0.0, swing, slew)
                      : circuit::Stimulus::step(0.0, swing));
  const auto drv = ckt.node("DRV");
  ckt.add_resistor("__Rdrv", vin, drv, driver.drive_resistance);
  sc.driver_node = drv;

  std::size_t counter = 0;
  for (const auto& e : net.parasitics) {
    const auto a = ckt.node(e.node_a);
    const auto b = ckt.node(e.node_b);
    const std::string name = "__p" + std::to_string(counter++);
    switch (e.kind) {
      case NetElement::Kind::Resistor:
        ckt.add_resistor(name, a, b, e.value);
        break;
      case NetElement::Kind::Capacitor:
        ckt.add_capacitor(name, a, b, e.value);
        break;
      case NetElement::Kind::Inductor:
        ckt.add_inductor(name, a, b, e.value);
        break;
    }
  }
  std::size_t macro_counter = 0;
  for (const auto& m : net.macros) {
    circuit::MacroElement macro;
    macro.name = "__m" + std::to_string(macro_counter++);
    macro.ports.reserve(m.ports.size());
    for (const auto& port : m.ports) macro.ports.push_back(ckt.node(port));
    macro.states = m.states;
    macro.g = m.g;
    macro.c = m.c;
    macro.sum_resistance = m.sum_resistance;
    macro.sum_capacitance = m.sum_capacitance;
    ckt.add_macro(std::move(macro));
  }
  for (const auto& [sink, node_name] : net.sink_node) {
    const auto node = ckt.node(node_name);
    sc.sink_nodes[sink] = node;
    const auto it = gates.find(sink);
    if (it != gates.end() && it->second.input_capacitance > 0.0) {
      ckt.add_capacitor("__cin_" + sink, node, circuit::kGround,
                        it->second.input_capacitance);
    }
  }
  return sc;
}

// The moment-matching evaluation shared by the Awe and TwoPole models:
// the Awe model runs the requested order with auto-escalation (the
// paper's Sections 3.3/3.4), the TwoPole model pins q = 2 with no
// escalation (the Penfield-Rubinstein middle ground).  Everything else
// -- pre-flight lint, batch solve, LU adoption/capture, threshold
// extraction, degradation accounting -- is common.
StageEvaluation engine_backed_evaluate(const StageProblem& p, int order,
                                       bool auto_order) {
  const Gate& driver = *p.driver;
  const Net& net = *p.net;
  const std::map<std::string, Gate>& gates = *p.gates;
  const AnalysisOptions& options = *p.options;
  const double t_in = p.input_arrival;
  const double in_slew = p.input_slew;

  StageEvaluation outcome;
  StageTiming& st = outcome.timing;
  st.driver_gate = driver.name;
  st.net = net.name;
  st.input_arrival = t_in;

  StageCircuit sc = build_stage(driver, net, gates, options.swing,
                                in_slew);

  // Pre-flight lint: the stage circuit is checked structurally before
  // any matrix is assembled.  Errors short-circuit to the Elmore bound
  // with the lint records naming the offending elements -- previously
  // the same stage died inside the LU and the report said only
  // "singular system".  Warnings never change the timing numbers.
  std::size_t lint_errors = 0;
  std::size_t lint_warnings = 0;
  std::shared_ptr<const check::LintReport> lint;
  if (options.preflight_lint) {
    if (p.lint_pre != nullptr) {
      lint = p.lint_pre;
    } else {
      check::LintOptions lint_options;
      lint_options.classify_note = false;
      lint = std::make_shared<const check::LintReport>(
          check::lint(sc.ckt, lint_options));
      if (p.capture_factorization) outcome.lint = lint;
    }
    lint_errors = lint->errors;
    lint_warnings = lint->warnings;
    if (!lint->ok()) {
      const core::Diagnostic* first_error = nullptr;
      core::Diagnostics lint_records;
      for (const auto& d : lint->diagnostics) {
        if (d.severity >= core::Severity::Error) {
          if (first_error == nullptr) first_error = &d;
          lint_records.push_back(d);
        }
      }
      StageEvaluation fallback = detail::elmore_fallback_stage(
          driver, net, gates, t_in, in_slew,
          "pre-flight lint: " + first_error->to_string());
      fallback.timing.diagnostics.insert(
          fallback.timing.diagnostics.begin(), lint_records.begin(),
          lint_records.end());
      fallback.stats.lint_errors = lint_errors;
      fallback.stats.lint_warnings = lint_warnings;
      fallback.lint = std::move(outcome.lint);
      return fallback;
    }
  }

  core::Engine engine(sc.ckt);
  bool low_rank_used = false;
  bool low_rank_refused = false;
  if (p.adopt != nullptr) {
    // A content-identical circuit already factored G in this session:
    // share the LU and replay its factor-time observables (gmin flag,
    // diagnostics) so every Result is bitwise what a fresh factorization
    // would have produced; only the LU work is skipped.
    engine.system().adopt_g_solver(p.adopt->solver, p.adopt->used_gmin,
                                   p.adopt->diagnostics);
  } else if (p.low_rank != nullptr) {
    // No exact factorization, but the Session found a value-perturbed
    // donor: try the Sherman-Morrison warm path.  A refusal (rank cap,
    // drift watchdog, fault probe, unsupported delta) simply leaves the
    // engine to factor fresh -- always correct, and flagged so sweeps
    // can see their refactorization rate.
    low_rank_used = engine.system().adopt_low_rank_solver(
        p.low_rank->donor->solver, p.low_rank->donor->used_gmin,
        p.low_rank->donor->diagnostics, p.low_rank->deltas,
        p.low_rank->options);
    if (!low_rank_used) {
      low_rank_refused = true;
      core::Diagnostic d;
      d.code = core::DiagCode::LowRankDrift;
      d.severity = core::Severity::Info;
      d.message =
          "low-rank warm path refused the accumulated updates; stage "
          "refactorized in full";
      d.element = net.name;
      st.diagnostics.push_back(std::move(d));
    }
  }
  core::EngineOptions eopt;
  eopt.order = order;
  eopt.auto_order = auto_order;
  eopt.error_tolerance = 0.01;
  eopt.max_order = auto_order ? std::max(order + 2, 6) : order;
  // The analyzer owns the stage pre-flight (above, cached under a
  // Session); never double-lint inside the engine.
  eopt.preflight_lint = false;

  // Sink order: sc.sink_nodes is a std::map, so sinks come out sorted
  // by name -- part of the determinism contract.
  std::vector<std::string> sink_names;
  std::vector<circuit::NodeId> sink_nodes;
  sink_names.reserve(sc.sink_nodes.size());
  sink_nodes.reserve(sc.sink_nodes.size());
  for (const auto& [sink, node] : sc.sink_nodes) {
    sink_names.push_back(sink);
    sink_nodes.push_back(node);
  }

  // One batch solve for the whole net: the LU factorization and moment
  // vectors are shared; each sink costs only its moment match.
  const core::BatchResult batch = engine.approximate_all(sink_nodes, eopt);
  for (std::size_t i = 0; i < sink_names.size(); ++i) {
    const core::Result& result = batch.results[i];
    st.awe_order_used = std::max(st.awe_order_used, result.order_used);
    if (result.status >= core::ApproxStatus::OrderReduced) {
      // The engine walked its degradation ladder for this sink: the
      // timing numbers below come from a below-requested-quality model.
      st.degraded = true;
      core::Diagnostic d;
      d.code = core::DiagCode::StageDegraded;
      d.severity = core::Severity::Warning;
      d.message = std::string("sink answered from ladder rung '") +
                  core::to_string(result.status) + "'";
      d.element = net.name;
      d.node = sink_names[i];
      st.diagnostics.push_back(std::move(d));
    }
    for (const auto& rd : result.diagnostics) {
      if (rd.severity >= core::Severity::Warning) {
        st.diagnostics.push_back(rd);
      }
    }
    // Horizon: generous multiple of the slowest time constant plus the
    // input slew.
    const double tau = result.approximation.dominant_time_constant();
    const double horizon = 12.0 * tau + 3.0 * in_slew + 1e-15;
    const double v_th = options.swing * options.delay_threshold_fraction;
    const double v_lo = options.swing * options.slew_low_fraction;
    const double v_hi = options.swing * options.slew_high_fraction;
    const auto t_th =
        result.approximation.first_crossing(v_th, 0.0, horizon);
    const auto t_lo =
        result.approximation.first_crossing(v_lo, 0.0, horizon);
    const auto t_hi =
        result.approximation.first_crossing(v_hi, 0.0, horizon);
    SinkTiming sink_t;
    sink_t.gate = sink_names[i];
    sink_t.stage_delay = driver.intrinsic_delay + t_th.value_or(horizon);
    sink_t.slew = (t_hi && t_lo) ? *t_hi - *t_lo : horizon;
    sink_t.arrival = t_in + sink_t.stage_delay;
    st.sinks.push_back(std::move(sink_t));
  }
  const std::shared_ptr<const check::LintReport> fresh_lint =
      std::move(outcome.lint);
  outcome.stats = batch.stats;
  outcome.stats.stages = 1;
  outcome.stats.lint_errors += lint_errors;
  outcome.stats.lint_warnings += lint_warnings;
  outcome.lint = fresh_lint;
  outcome.low_rank_used = low_rank_used;
  outcome.stats.low_rank_points = low_rank_used ? 1 : 0;
  outcome.stats.low_rank_refactorizations = low_rank_refused ? 1 : 0;
  if (p.capture_factorization && p.adopt == nullptr && !low_rank_used) {
    // Publish this circuit's G factorization (and its factor-time
    // observables) for the post-pass to cache under the content key.
    // Never when the stage ran on a corrected donor: a low-rank solver
    // is tolerance-equal, not bit-equal, and must not masquerade as an
    // exact factorization of this content.
    outcome.solver = engine.system().shared_g_solver();
    outcome.used_gmin = engine.system().used_gmin();
    outcome.factor_diags = engine.system().diagnostics();
  }
  return outcome;
}

class AweModel final : public DelayModel {
 public:
  DelayModelKind kind() const override { return DelayModelKind::Awe; }
  const char* name() const override { return "awe"; }
  bool uses_engine() const override { return true; }
  StageEvaluation evaluate(const StageProblem& p) const override {
    return engine_backed_evaluate(p, p.options->order, /*auto_order=*/true);
  }
};

class TwoPoleModel final : public DelayModel {
 public:
  DelayModelKind kind() const override { return DelayModelKind::TwoPole; }
  const char* name() const override { return "two_pole"; }
  bool uses_engine() const override { return true; }
  StageEvaluation evaluate(const StageProblem& p) const override {
    return engine_backed_evaluate(p, /*order=*/2, /*auto_order=*/false);
  }
};

class ElmoreBoundModel final : public DelayModel {
 public:
  DelayModelKind kind() const override {
    return DelayModelKind::ElmoreBound;
  }
  const char* name() const override { return "elmore"; }
  bool uses_engine() const override { return false; }
  StageEvaluation evaluate(const StageProblem& p) const override {
    // Same arithmetic as the failure fallback -- the whole point: when a
    // stage dies under the Awe model, its substitute is exactly what
    // this model would have said -- but as a first-class answer: no
    // degraded/failed taint, no StageFailed diagnostic.
    StageEvaluation outcome = detail::elmore_fallback_stage(
        *p.driver, *p.net, *p.gates, p.input_arrival, p.input_slew,
        "model");
    outcome.timing.degraded = false;
    outcome.timing.failed = false;
    outcome.timing.diagnostics.clear();
    outcome.stats = {};
    outcome.stats.stages = 1;
    return outcome;
  }
};

// The characterized-table model: delay and output slew interpolated from
// a precomputed grid over the scale-free ratio u = input_slew / tau,
// where tau is the lumped Elmore time constant of the stage.  The grid
// is characterized once, at first use, from the exact single-pole ramp
// response (bisection on the closed form) -- the shape of an NLDM cell
// table with its two axes (load, slew) collapsed onto the normalized
// axis that actually drives the single-pole answer.  Between grid points
// the model answers by linear interpolation in ln u, so it carries
// genuine table-lookup error with respect to the closed form.
class TableLookupModel final : public DelayModel {
 public:
  TableLookupModel() {
    // Log grid over u = slew/tau in [1e-3, 1e3], 97 points.
    const double lo = std::log(1e-3);
    const double hi = std::log(1e3);
    for (std::size_t i = 0; i < kPoints; ++i) {
      const double lu =
          lo + (hi - lo) * static_cast<double>(i) /
                   static_cast<double>(kPoints - 1);
      log_u_[i] = lu;
      const double u = std::exp(lu);
      delay_factor_[i] = crossing(u, 0.5);
      slew_factor_[i] = crossing(u, 0.8) - crossing(u, 0.2);
    }
  }

  DelayModelKind kind() const override {
    return DelayModelKind::TableLookup;
  }
  const char* name() const override { return "table"; }
  bool uses_engine() const override { return false; }

  StageEvaluation evaluate(const StageProblem& p) const override {
    const Gate& driver = *p.driver;
    StageEvaluation outcome;
    StageTiming& st = outcome.timing;
    st.driver_gate = driver.name;
    st.net = p.net->name;
    st.input_arrival = p.input_arrival;

    const double tau = detail::lumped_elmore_tau(driver, *p.net, *p.gates);
    double delay = 0.0;
    double out_slew = p.input_slew;
    if (tau > 0.0) {
      const double u =
          std::max(p.input_slew, 0.0) / tau;  // 0 = ideal step column
      delay = tau * lookup(log_u_, delay_factor_, u);
      out_slew = std::max(tau * lookup(log_u_, slew_factor_, u),
                          p.input_slew);
    }
    for (const auto& [sink, node_name] : p.net->sink_node) {
      SinkTiming sink_t;
      sink_t.gate = sink;
      sink_t.stage_delay = driver.intrinsic_delay + delay;
      sink_t.slew = out_slew;
      sink_t.arrival = p.input_arrival + sink_t.stage_delay;
      st.sinks.push_back(std::move(sink_t));
    }
    outcome.stats.stages = 1;
    return outcome;
  }

 private:
  static constexpr std::size_t kPoints = 97;

  /// Normalized crossing time x = t/tau of level `f` for a unit ramp of
  /// normalized rise u = T/tau through a single pole:
  ///   x <= u:  w(x) = (x - (1 - e^-x)) / u
  ///   x >  u:  w(x) = 1 - ((1 - e^-u)/u) e^-(x-u)
  /// Monotone, so bisection is exact to the tolerance.
  static double crossing(double u, double f) {
    auto w = [u](double x) {
      if (x <= u) return (x - (1.0 - std::exp(-x))) / u;
      return 1.0 - ((1.0 - std::exp(-u)) / u) * std::exp(-(x - u));
    };
    double lo = 0.0;
    double hi = u + 50.0;
    for (int i = 0; i < 200; ++i) {
      const double mid = 0.5 * (lo + hi);
      if (w(mid) < f) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    return 0.5 * (lo + hi);
  }

  static double lookup(const std::array<double, kPoints>& xs,
                       const std::array<double, kPoints>& ys, double u) {
    // Clamp below the grid to the step-response column and above it to
    // the slow-ramp column; interpolate linearly in ln u between.
    const double lu = std::log(std::max(u, 1e-300));
    if (lu <= xs.front()) return ys.front();
    if (lu >= xs.back()) return ys.back();
    const auto it = std::upper_bound(xs.begin(), xs.end(), lu);
    const std::size_t j = static_cast<std::size_t>(it - xs.begin());
    const double t = (lu - xs[j - 1]) / (xs[j] - xs[j - 1]);
    return ys[j - 1] + t * (ys[j] - ys[j - 1]);
  }

  std::array<double, kPoints> log_u_{};
  std::array<double, kPoints> delay_factor_{};
  std::array<double, kPoints> slew_factor_{};
};

}  // namespace

const DelayModel& delay_model(DelayModelKind kind) {
  static const AweModel awe;
  static const TwoPoleModel two_pole;
  static const ElmoreBoundModel elmore;
  static const TableLookupModel table;
  switch (kind) {
    case DelayModelKind::Awe: return awe;
    case DelayModelKind::ElmoreBound: return elmore;
    case DelayModelKind::TwoPole: return two_pole;
    case DelayModelKind::TableLookup: return table;
  }
  throw std::invalid_argument("delay_model: unknown kind");
}

}  // namespace awesim::timing
