#include "timing/graph.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>

namespace awesim::timing {

std::size_t TimingGraph::intern_node(const std::string& name,
                                     const std::string& owner,
                                     PinKind kind) {
  const auto it = index_.find(name);
  if (it != index_.end()) return it->second;
  TimingNode node;
  node.name = name;
  node.owner = owner;
  node.kind = kind;
  const std::size_t id = nodes_.size();
  nodes_.push_back(std::move(node));
  index_.emplace(name, id);
  return id;
}

std::size_t TimingGraph::find(const std::string& pin_name) const {
  const auto it = index_.find(pin_name);
  return it == index_.end() ? npos : it->second;
}

double TimingGraph::arrival_at(const std::string& gate) const {
  const std::size_t id = find(gate + ":in");
  if (id == npos) {
    throw std::invalid_argument("TimingGraph: unknown gate '" + gate + "'");
  }
  return nodes_[id].arrival;
}

double TimingGraph::slack_at(const std::string& gate) const {
  const std::size_t id = find(gate + ":in");
  if (id == npos) {
    throw std::invalid_argument("TimingGraph: unknown gate '" + gate + "'");
  }
  return nodes_[id].slack;
}

TimingGraph TimingGraph::build(const TimingReport& report,
                               const GraphOptions& options) {
  TimingGraph g;

  // Gate pins first, in the (sorted) gate_arrival order; the gate arc
  // <g>:in -> <g>:out is created alongside.  Delay 0: the stage model
  // reports sink delays measured from the *driver gate input* (intrinsic
  // delay folded in), so re-propagation reproduces the wavefront's
  // arithmetic exactly -- arrival(g:out) = arrival(g:in) + 0.0 is
  // bitwise arrival(g:in) for the non-negative times involved.
  for (const auto& [gate, t] : report.gate_arrival) {
    const std::size_t in = g.intern_node(gate + ":in", gate,
                                         PinKind::GateInput);
    const std::size_t out = g.intern_node(gate + ":out", gate,
                                          PinKind::GateOutput);
    TimingArc arc;
    arc.from = in;
    arc.to = out;
    arc.kind = ArcKind::Gate;
    const std::size_t arc_id = g.arcs_.size();
    g.arcs_.push_back(std::move(arc));
    g.nodes_[in].fanout.push_back(arc_id);
    g.nodes_[out].fanin.push_back(arc_id);
  }

  // Port nodes for design-output sinks, name-sorted for determinism.
  {
    std::set<std::string> ports;
    for (const auto& st : report.stages) {
      for (const auto& s : st.sinks) {
        if (report.gate_arrival.count(s.gate) == 0) ports.insert(s.gate);
      }
    }
    for (const auto& p : ports) g.intern_node(p, p, PinKind::Port);
  }

  // Net arcs in report-stage order (the deterministic reduction order of
  // the wavefront), one per stage sink.
  for (const auto& st : report.stages) {
    const std::size_t from = g.find(st.driver_gate + ":out");
    if (from == npos) {
      throw std::invalid_argument(
          "TimingGraph: stage driver '" + st.driver_gate +
          "' is not in the report's gate_arrival map");
    }
    for (const auto& s : st.sinks) {
      const bool is_gate = report.gate_arrival.count(s.gate) > 0;
      const std::size_t to = g.find(is_gate ? s.gate + ":in" : s.gate);
      TimingArc arc;
      arc.from = from;
      arc.to = to;
      arc.kind = ArcKind::Net;
      arc.net = st.net;
      arc.delay = s.stage_delay;
      arc.slew = s.slew;
      arc.degraded = st.degraded;
      arc.failed = st.failed;
      const std::size_t arc_id = g.arcs_.size();
      g.arcs_.push_back(std::move(arc));
      g.nodes_[from].fanout.push_back(arc_id);
      g.nodes_[to].fanin.push_back(arc_id);
    }
  }

  // Sources: the wave-0 gates the report recorded (their input pins are
  // pinned to t = 0 even if something feeds them), plus any pin with no
  // fanin at all.
  for (const auto& gate : report.source_gates) {
    const std::size_t id = g.find(gate + ":in");
    if (id != npos) g.nodes_[id].is_source = true;
  }
  for (auto& node : g.nodes_) {
    if (node.fanin.empty()) node.is_source = true;
    if (node.fanout.empty()) node.is_endpoint = true;
  }
  for (std::size_t i = 0; i < g.nodes_.size(); ++i) {
    if (g.nodes_[i].is_source) g.sources_.push_back(i);
    if (g.nodes_[i].is_endpoint) g.endpoints_.push_back(i);
  }

  g.propagate_arrivals();
  g.propagate_required(options);
  return g;
}

void TimingGraph::propagate_arrivals() {
  // Kahn levelization over the pin DAG; within a level, nodes process in
  // index order, so topo_ is a pure function of the graph.  Arcs *into* a
  // source pin are not levelization edges: the source's arrival is pinned
  // at 0 no matter what feeds it (the legacy primary-input contract), and
  // skipping them is what lets feedback through a declared primary input
  // level -- exactly the designs the wavefront itself accepts.
  std::vector<std::size_t> indegree(nodes_.size(), 0);
  for (const TimingArc& arc : arcs_) {
    if (!nodes_[arc.to].is_source) ++indegree[arc.to];
  }
  std::vector<std::size_t> frontier;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (indegree[i] == 0) frontier.push_back(i);
  }
  topo_.clear();
  topo_.reserve(nodes_.size());
  std::size_t level = 0;
  while (!frontier.empty()) {
    std::vector<std::size_t> next;
    for (const std::size_t id : frontier) {
      nodes_[id].level = level;
      topo_.push_back(id);
      for (const std::size_t arc_id : nodes_[id].fanout) {
        const std::size_t to = arcs_[arc_id].to;
        if (nodes_[to].is_source) continue;
        if (--indegree[to] == 0) next.push_back(to);
      }
    }
    std::sort(next.begin(), next.end());
    frontier = std::move(next);
    ++level;
  }
  if (topo_.size() != nodes_.size()) {
    throw std::invalid_argument("TimingGraph: cycle in the pin DAG");
  }

  // Forward pass.  max() over the fanin set is order-independent at the
  // bit level, and each operand is the same arrival(from) + delay sum the
  // wavefront computed, so gate-input arrivals reproduce the legacy
  // analyzer's map exactly.
  for (const std::size_t id : topo_) {
    TimingNode& node = nodes_[id];
    if (node.is_source) {
      node.arrival = 0.0;
      continue;
    }
    double at = -std::numeric_limits<double>::infinity();
    for (const std::size_t arc_id : node.fanin) {
      const TimingArc& arc = arcs_[arc_id];
      const double t = nodes_[arc.from].arrival + arc.delay;
      if (t > at) at = t;
    }
    node.arrival = at;
  }

  max_arrival_ = 0.0;
  for (const std::size_t id : endpoints_) {
    max_arrival_ = std::max(max_arrival_, nodes_[id].arrival);
  }
}

void TimingGraph::propagate_required(const GraphOptions& options) {
  const double required = std::isnan(options.required_time)
                              ? max_arrival_
                              : options.required_time;
  for (const std::size_t id : endpoints_) {
    nodes_[id].required = required;
  }
  // Backward pass in reverse topological order: min() over the fanout
  // set, as order-independent as the forward max.
  for (auto it = topo_.rbegin(); it != topo_.rend(); ++it) {
    TimingNode& node = nodes_[*it];
    if (!node.is_endpoint) {
      double rat = std::numeric_limits<double>::infinity();
      for (const std::size_t arc_id : node.fanout) {
        const TimingArc& arc = arcs_[arc_id];
        // An arc into a source pin carries no path (the pin is pinned to
        // t = 0), so it places no requirement on its driver.
        if (nodes_[arc.to].is_source) continue;
        const double r = nodes_[arc.to].required - arc.delay;
        if (r < rat) rat = r;
      }
      node.required = rat;
    }
    node.slack = node.required - node.arrival;
  }
  for (TimingArc& arc : arcs_) {
    arc.slack = nodes_[arc.to].required - arc.delay - nodes_[arc.from].arrival;
  }

  worst_slack_ = 0.0;
  worst_endpoint_.clear();
  bool first = true;
  for (const std::size_t id : endpoints_) {
    const TimingNode& node = nodes_[id];
    const bool better =
        first || node.slack < worst_slack_ ||
        (node.slack == worst_slack_ && node.name < worst_endpoint_);
    if (better) {
      worst_slack_ = node.slack;
      worst_endpoint_ = node.name;
      first = false;
    }
  }
}

}  // namespace awesim::timing
