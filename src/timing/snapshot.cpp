#include "timing/snapshot.h"

#include <cmath>
#include <limits>
#include <utility>

#include "core/cancel.h"
#include "timing/stage_cache.h"

namespace awesim::timing {

Snapshot::Snapshot(std::uint64_t generation, Design design,
                   AnalysisOptions options,
                   std::shared_ptr<detail::StageCache> cache)
    : generation_(generation),
      design_(std::move(design)),
      options_(options),
      cache_(std::move(cache)) {
  // A snapshot's identity is its design content; a caller-scoped token
  // must never leak into queries made by other clients.
  options_.cancel = nullptr;
}

std::shared_ptr<const TimingReport> Snapshot::report(
    core::CancelToken* cancel) const {
  std::lock_guard<std::mutex> lock(memo_mutex_);
  if (memo_ != nullptr) return memo_;
  AnalysisOptions options = options_;
  options.cancel = cancel;
  Session scratch(design_, options, cache_);
  // On a throw (deadline, budget, structural error) memo_ stays empty:
  // the *next* reader analyzes afresh -- warm, because every stage the
  // aborted walk completed is already in the shared cache.
  memo_ = std::make_shared<const TimingReport>(scratch.analyze());
  return memo_;
}

double Snapshot::worst_slack(core::CancelToken* cancel) const {
  return report(cancel)->worst_slack;
}

TimingGraph Snapshot::graph(double required_time,
                            core::CancelToken* cancel) const {
  const std::shared_ptr<const TimingReport> rep = report(cancel);
  GraphOptions gopt;
  gopt.required_time =
      std::isnan(required_time) ? options_.required_time : required_time;
  return TimingGraph::build(*rep, gopt);
}

PathsResult Snapshot::worst_paths(const PathQuery& query,
                                  core::CancelToken* cancel) const {
  const TimingGraph g =
      graph(std::numeric_limits<double>::quiet_NaN(), cancel);
  PathQuery q = query;
  if (q.cancel == nullptr) q.cancel = cancel;
  return k_worst_paths(g, q);
}

SweepResult Snapshot::sweep(const SweepParam& param,
                            const std::vector<double>& values,
                            core::CancelToken* cancel) const {
  return sweep(param, values, SessionOptions(), cancel);
}

SweepResult Snapshot::sweep(const SweepParam& param,
                            const std::vector<double>& values,
                            const SessionOptions& session_options,
                            core::CancelToken* cancel) const {
  AnalysisOptions options = options_;
  options.cancel = cancel;
  Session scratch(design_, options, session_options, cache_);
  return scratch.sweep(param, values);
}

SnapshotStore::SnapshotStore(Design design, AnalysisOptions options)
    : cache_(std::make_shared<detail::StageCache>()) {
  std::lock_guard<std::mutex> writer(writer_mutex_);
  publish_locked(std::move(design), options);
}

std::shared_ptr<const Snapshot> SnapshotStore::current() const {
  std::lock_guard<std::mutex> lock(current_mutex_);
  return current_;
}

std::uint64_t SnapshotStore::publish_locked(Design design,
                                            AnalysisOptions options) {
  options.cancel = nullptr;
  auto next = std::make_shared<const Snapshot>(next_generation_,
                                               std::move(design), options,
                                               cache_);
  std::lock_guard<std::mutex> lock(current_mutex_);
  current_ = std::move(next);
  return next_generation_++;
}

std::uint64_t SnapshotStore::mutate(
    const std::function<void(Session&)>& edit) {
  std::lock_guard<std::mutex> writer(writer_mutex_);
  // The scratch session owns a private copy of the pinned design; the
  // edit closure sees full Session semantics (mutators, warm analyze,
  // sweeps) but nothing it does is visible until the publish below.
  const std::shared_ptr<const Snapshot> base = current();
  Session scratch(base->design(), base->options(), cache_);
  edit(scratch);
  return publish_locked(scratch.design(), base->options());
}

std::uint64_t SnapshotStore::reset(Design design) {
  std::lock_guard<std::mutex> writer(writer_mutex_);
  const AnalysisOptions options = current()->options();
  return publish_locked(std::move(design), options);
}

std::uint64_t SnapshotStore::reset(Design design, AnalysisOptions options) {
  std::lock_guard<std::mutex> writer(writer_mutex_);
  return publish_locked(std::move(design), options);
}

Session::CacheStats SnapshotStore::cache_stats() const {
  const detail::StageCache::Counters c = cache_->counters();
  Session::CacheStats stats;
  stats.stage_entries = cache_->stage_entries();
  stats.factorization_entries = cache_->factorization_entries();
  stats.lint_entries = cache_->lint_entries();
  stats.hits = c.hits;
  stats.misses = c.misses;
  stats.invalidations = c.invalidations;
  stats.evictions = c.evictions;
  stats.lint_hits = c.lint_hits;
  stats.lint_misses = c.lint_misses;
  return stats;
}

}  // namespace awesim::timing
