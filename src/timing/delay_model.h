// The pluggable delay-model seam of the timing engine.
//
// The paper's pitch is AWE as *the* delay kernel inside a static timing
// analyzer, but a production analyzer never has exactly one kernel: fast
// bounds for pruning, table models for characterized cells, low-order
// analytic models for estimation, and the full moment-matching engine for
// signoff all answer the same question -- "given this driver, this net,
// and this input slew, when does each sink switch and how fast?".  This
// header makes that question a first-class interface so stages, graph
// arcs, paths, and reports are model-agnostic.
//
// Four built-in models:
//
//   * Awe        -- the paper's q-pole moment-matching engine
//                   (core::Engine batch solve, auto-order escalation,
//                   the full degradation ladder).  This is the model the
//                   legacy analyzer always used; its numbers are
//                   bit-identical to the pre-seam analyzer by
//                   construction (the code moved, it did not change).
//   * ElmoreBound-- the lumped first-order bound
//                   tau = (Rdrv + sum R) * (sum C): no linear solve,
//                   pessimistic by construction on RC trees.  The same
//                   arithmetic doubles as the analyzer's last-resort
//                   fallback when a stage evaluation throws.
//   * TwoPole    -- Penfield-Rubinstein-style two-pole moment match: the
//                   AWE machinery pinned at q = 2, no auto-order
//                   escalation.  The classic middle ground between the
//                   Elmore bound and full AWE.
//   * TableLookup-- characterized lookup table: delay and output slew
//                   interpolated from a precomputed grid over the
//                   normalized slew/tau ratio (the shape of an NLDM cell
//                   table, collapsed to its scale-free axis).  No matrix
//                   assembly at all.
//
// Engine-backed models (Awe, TwoPole) participate in the Session's
// content-addressed LU sharing and pre-flight lint caching; arithmetic
// models (ElmoreBound, TableLookup) never touch a matrix, so the
// analyzer skips that plumbing for them.  The model kind is part of the
// stage-result cache key (see stage_cache.cpp), so one Session can serve
// interleaved queries under different models without cross-talk.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "check/lint.h"
#include "core/diagnostic.h"
#include "core/stats.h"
#include "la/low_rank.h"
#include "mna/system.h"
#include "timing/analyzer.h"

namespace awesim::timing {

namespace detail {
struct CachedFactorization;
}

/// A warm-path plan built by the Session's serial pre-pass: evaluate the
/// stage against this donor factorization through Sherman-Morrison
/// corrections for the listed value deltas instead of factoring fresh.
/// The plan is advisory -- the evaluation falls back to a full
/// refactorization (flagging DiagCode::LowRankDrift) whenever the
/// corrected solver refuses an update.
struct LowRankPlan {
  std::shared_ptr<const detail::CachedFactorization> donor;
  /// (stage-circuit element name, donor-time value) for every element
  /// whose value differs from the donor's circuit.
  std::vector<std::pair<std::string, double>> deltas;
  la::LowRankOptions options;
};

/// Everything one stage evaluation depends on, by reference.  The
/// adopt/capture/lint_pre fields are the Session cache plumbing; they are
/// meaningful only for models where `uses_engine()` is true.
struct StageProblem {
  const Gate* driver = nullptr;
  const Net* net = nullptr;
  const std::map<std::string, Gate>* gates = nullptr;
  const AnalysisOptions* options = nullptr;
  double input_arrival = 0.0;
  double input_slew = 0.0;
  const detail::CachedFactorization* adopt = nullptr;
  bool capture_factorization = false;
  std::shared_ptr<const check::LintReport> lint_pre;
  /// Non-null when the Session planned a low-rank warm evaluation.
  /// Ignored (like adopt) by models that do not use the engine.
  const LowRankPlan* low_rank = nullptr;
};

/// What a model hands back: the finished stage timing plus the cost
/// counters and (for engine-backed models under a Session) the
/// factorization/lint artifacts the serial post-pass may cache.
struct StageEvaluation {
  StageTiming timing;
  core::Stats stats;
  std::shared_ptr<const mna::Solver> solver;  // set when capturing
  bool used_gmin = false;
  core::Diagnostics factor_diags;
  std::shared_ptr<const check::LintReport> lint;
  /// True when the stage really was solved through the corrected donor
  /// (tolerance-equal result: cache under the low-rank key, never
  /// publish a factorization).  False when no plan was given or the
  /// plan was refused and a full refactorization ran instead.
  bool low_rank_used = false;
};

class DelayModel {
 public:
  virtual ~DelayModel() = default;

  virtual DelayModelKind kind() const = 0;

  /// Stable machine name ("awe", "elmore", "two_pole", "table").
  virtual const char* name() const = 0;

  /// True when the model assembles MNA matrices (and therefore wants the
  /// pre-flight lint, LU adoption, and factorization capture).
  virtual bool uses_engine() const = 0;

  /// Evaluate every sink of one stage.  Must be thread-compatible: the
  /// analyzer calls concurrently from the wavefront pool, one problem
  /// per call, no shared mutable state.  Anything thrown is caught by
  /// the analyzer and answered with the Elmore fallback.
  virtual StageEvaluation evaluate(const StageProblem& problem) const = 0;
};

/// The process-wide instance for a built-in kind.  Models are stateless
/// (the table model's grid is computed once, up front), so singletons
/// are safe to share across threads and sessions.
const DelayModel& delay_model(DelayModelKind kind);

namespace detail {

/// The lumped Elmore time constant tau = (Rdrv + sum |R|) * (sum |C| +
/// sum sink input caps) -- shared by the ElmoreBound model and the
/// analyzer's evaluation-failure fallback so the two are the same
/// arithmetic by construction.
double lumped_elmore_tau(const Gate& driver, const Net& net,
                         const std::map<std::string, Gate>& gates);

/// The analyzer's last-resort stage estimate when evaluation itself is
/// dead (singular MNA, injected fault, anything thrown): the lumped
/// Elmore bound, flagged degraded+failed with a StageFailed diagnostic.
StageEvaluation elmore_fallback_stage(const Gate& driver, const Net& net,
                                      const std::map<std::string, Gate>& gates,
                                      double input_arrival, double input_slew,
                                      const std::string& reason);

}  // namespace detail

}  // namespace awesim::timing
