// Snapshot isolation over the incremental timing session -- the
// concurrency model behind `awesim_serve`.
//
// A timing::Session is a single-writer object: mutators edit the design
// in place and analyze() walks that design.  A service multiplexing many
// clients over one loaded design needs more: readers must see a
// consistent state while a writer mutates, a failed mutation must leave
// nothing behind, and every client should profit from every other
// client's warm cache.  SnapshotStore provides exactly that with
// copy-on-write generations over one shared content-addressed
// StageCache:
//
//   * The store holds one immutable *current* Snapshot: a generation
//     number plus a frozen copy of the design and analysis options.
//     Readers pin it (shared_ptr) and keep using it for as long as they
//     like -- a pinned snapshot never changes, even as newer generations
//     are published, so two queries against the same pin are
//     bit-identical by construction.
//   * A writer mutates through mutate(): one writer at a time copies the
//     current design into a scratch Session, applies the edit closure,
//     and only then publishes generation N+1.  An edit that throws
//     (unknown net, bad index, injected fault) publishes nothing -- the
//     rollback is the absence of a commit, there is no partially-mutated
//     state anywhere a reader could see.
//   * All analysis -- snapshot reports, sweeps, path queries, and the
//     first analysis of every new generation -- runs through private
//     Sessions sharing the store's StageCache.  Content addressing makes
//     that safe (see Session's shared-cache constructor) and makes
//     every query warm: generation N+1 re-evaluates only the stages the
//     edit actually changed, and K readers of one snapshot pay for one
//     analysis (memoized) plus zero-lock reuse afterwards.
//
// Cancellation composes per request: a CancelToken passed to a snapshot
// query bounds *that* analysis only.  A cancelled analysis publishes
// no memo and leaves the shared cache valid (fully evaluated stages
// only), so the next reader simply retries -- warm.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "timing/session.h"

namespace awesim::core {
class CancelToken;
}

namespace awesim::timing {

/// One immutable published generation.  All methods are const and safe
/// to call from any number of threads; analysis results are memoized per
/// snapshot, so repeated queries of one pin cost one warm analysis
/// total.
class Snapshot {
 public:
  Snapshot(std::uint64_t generation, Design design, AnalysisOptions options,
           std::shared_ptr<detail::StageCache> cache);

  std::uint64_t generation() const { return generation_; }
  const Design& design() const { return design_; }
  const AnalysisOptions& options() const { return options_; }

  /// The snapshot's timing report (warm through the shared cache;
  /// memoized).  `cancel` bounds only an analysis this call actually
  /// performs; a memoized report returns immediately.  On cancellation
  /// the memo stays empty and the next caller retries.
  std::shared_ptr<const TimingReport> report(
      core::CancelToken* cancel = nullptr) const;

  /// Worst endpoint slack (from report()).
  double worst_slack(core::CancelToken* cancel = nullptr) const;

  /// Pin-level timing graph built from report().  NaN required_time
  /// falls back to the snapshot options' required_time.
  TimingGraph graph(double required_time,
                    core::CancelToken* cancel = nullptr) const;

  /// K-worst paths over graph(); query.cancel also bounds the
  /// enumeration itself (expansion granularity).
  PathsResult worst_paths(const PathQuery& query,
                          core::CancelToken* cancel = nullptr) const;

  /// What-if sweep against this snapshot.  Runs on a *private* scratch
  /// Session (the snapshot itself is never touched), warm through the
  /// shared cache; concurrent sweeps on one snapshot are independent.
  /// The overload taking SessionOptions selects the sweep's solver
  /// policy (low-rank warm path vs exact refactorization) per request;
  /// the default keeps SessionOptions defaults.
  SweepResult sweep(const SweepParam& param,
                    const std::vector<double>& values,
                    core::CancelToken* cancel = nullptr) const;
  SweepResult sweep(const SweepParam& param,
                    const std::vector<double>& values,
                    const SessionOptions& session_options,
                    core::CancelToken* cancel = nullptr) const;

 private:
  std::uint64_t generation_ = 0;
  Design design_;
  AnalysisOptions options_;
  std::shared_ptr<detail::StageCache> cache_;

  mutable std::mutex memo_mutex_;
  mutable std::shared_ptr<const TimingReport> memo_;
};

/// The generation-stamped store: one current snapshot, serialized
/// writers, shared warm cache.  Thread-safe throughout.
class SnapshotStore {
 public:
  explicit SnapshotStore(Design design, AnalysisOptions options = {});

  /// Pin the current generation.  Never blocks on writers beyond the
  /// pointer swap.
  std::shared_ptr<const Snapshot> current() const;

  /// Apply `edit` to a scratch Session holding a copy of the current
  /// design, then publish the result as the next generation.  One
  /// writer at a time; readers keep their pins throughout.  If `edit`
  /// throws, nothing is published and the exception propagates -- a
  /// failed mutation rolls back by never existing.  Returns the new
  /// generation number.
  std::uint64_t mutate(const std::function<void(Session&)>& edit);

  /// Replace the served design entirely (the daemon's load_design).
  /// Starts a fresh generation lineage; the shared cache is kept, so a
  /// reload of a similar design stays warm.
  std::uint64_t reset(Design design);
  std::uint64_t reset(Design design, AnalysisOptions options);

  /// Cumulative shared-cache observability (all generations).
  Session::CacheStats cache_stats() const;

 private:
  std::uint64_t publish_locked(Design design, AnalysisOptions options);

  std::shared_ptr<detail::StageCache> cache_;

  // writer_mutex_ serializes mutate/reset end to end; current_mutex_
  // guards only the published-pointer swap that readers race with.
  std::mutex writer_mutex_;
  mutable std::mutex current_mutex_;
  std::shared_ptr<const Snapshot> current_;
  std::uint64_t next_generation_ = 0;
};

}  // namespace awesim::timing
