#include "timing/paths.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <queue>
#include <set>
#include <stdexcept>

#include "core/cancel.h"

namespace awesim::timing {

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

struct Candidate {
  double bound = kNegInf;  // prefix arrival + exact best completion
  double arrival = 0.0;    // prefix arrival at `node`
  std::size_t node = 0;
  std::uint64_t mask = 0;  // through-points visited so far
  std::vector<std::size_t> arcs;
};

// Max-heap on bound; ties go to the lexicographically smaller arc
// sequence, so the pop order (and therefore the K-worst list) is a pure
// function of the graph.
struct CandidateLess {
  bool operator()(const Candidate& a, const Candidate& b) const {
    if (a.bound != b.bound) return a.bound < b.bound;
    return std::lexicographical_compare(b.arcs.begin(), b.arcs.end(),
                                        a.arcs.begin(), a.arcs.end());
  }
};

}  // namespace

PathsResult k_worst_paths(const TimingGraph& graph, const PathQuery& query) {
  if (query.through.size() > 64) {
    throw std::invalid_argument(
        "k_worst_paths: at most 64 through-points are supported");
  }
  const auto& nodes = graph.nodes();
  const auto& arcs = graph.arcs();

  // Validate filter names against the owners actually present.
  {
    std::set<std::string> owners;
    for (const auto& n : nodes) owners.insert(n.owner);
    auto check = [&owners](const std::string& name, const char* what) {
      if (!name.empty() && owners.count(name) == 0) {
        throw std::invalid_argument(std::string("k_worst_paths: unknown ") +
                                    what + " '" + name + "'");
      }
    };
    check(query.from, "from-point");
    check(query.to, "to-point");
    for (const auto& t : query.through) check(t, "through-point");
  }

  PathsResult result;
  if (query.k == 0 || nodes.empty()) return result;

  // Paths never *enter* a source pin: sources switch at t = 0 by
  // definition (the pinned-primary-input contract), so an arc into one
  // carries no path semantics.
  auto traversable = [&nodes, &arcs](std::size_t arc_id) {
    return !nodes[arcs[arc_id].to].is_source;
  };

  // Through-point reachability masks.  fwd[n]: through-points owning a
  // pin that reaches n (or n itself); bwd[n]: through-points n reaches.
  // A pin can lie on a conforming path only if every through-point is in
  // fwd[n] | bwd[n] -- the standard SFXT-style prune; exact enforcement
  // happens at emission via the visited mask.
  const std::uint64_t full_mask =
      query.through.empty()
          ? 0
          : (query.through.size() == 64
                 ? ~std::uint64_t{0}
                 : (std::uint64_t{1} << query.through.size()) - 1);
  std::vector<std::uint64_t> own_bits(nodes.size(), 0);
  for (std::size_t b = 0; b < query.through.size(); ++b) {
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      if (nodes[i].owner == query.through[b]) {
        own_bits[i] |= std::uint64_t{1} << b;
      }
    }
  }
  const auto& topo = graph.topological_order();
  std::vector<std::uint64_t> fwd(nodes.size(), 0);
  std::vector<std::uint64_t> bwd(nodes.size(), 0);
  if (!query.through.empty()) {
    for (const std::size_t id : topo) {
      fwd[id] |= own_bits[id];
      for (const std::size_t arc_id : nodes[id].fanout) {
        if (traversable(arc_id)) fwd[arcs[arc_id].to] |= fwd[id];
      }
    }
    for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
      bwd[*it] |= own_bits[*it];
      for (const std::size_t arc_id : nodes[*it].fanin) {
        if (traversable(arc_id)) bwd[arcs[arc_id].from] |= bwd[*it];
      }
    }
  }

  // Suffix values against allowed endpoints: the exact best completion
  // arrival from each pin.  -inf = no allowed endpoint reachable; such
  // pins are never pushed.
  std::vector<double> suffix(nodes.size(), kNegInf);
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const std::size_t id = *it;
    const TimingNode& node = nodes[id];
    if (node.is_endpoint &&
        (query.to.empty() || node.owner == query.to)) {
      suffix[id] = 0.0;
    }
    for (const std::size_t arc_id : node.fanout) {
      if (!traversable(arc_id)) continue;
      const TimingArc& arc = arcs[arc_id];
      if (suffix[arc.to] == kNegInf) continue;
      suffix[id] = std::max(suffix[id], arc.delay + suffix[arc.to]);
    }
  }

  auto admissible = [&](std::size_t id) {
    if (suffix[id] == kNegInf) return false;
    return query.through.empty() ||
           ((fwd[id] | bwd[id]) & full_mask) == full_mask;
  };

  std::priority_queue<Candidate, std::vector<Candidate>, CandidateLess> heap;
  for (const std::size_t id : graph.sources()) {
    if (!query.from.empty() && nodes[id].owner != query.from) continue;
    if (!admissible(id)) continue;
    Candidate c;
    c.node = id;
    c.arrival = 0.0;
    c.mask = own_bits[id];
    c.bound = suffix[id];
    heap.push(std::move(c));
  }

  while (!heap.empty() && result.paths.size() < query.k) {
    if (result.expansions >= query.max_expansions) {
      result.truncated = true;
      break;
    }
    if (query.cancel != nullptr) query.cancel->charge("paths.expand");
    ++result.expansions;
    Candidate c = heap.top();
    heap.pop();
    const TimingNode& node = nodes[c.node];
    if (node.is_endpoint) {
      // Complete.  The bound was exact, so this is the worst remaining
      // path; emit if it visited every through-point.
      if (query.through.empty() || c.mask == full_mask) {
        Path p;
        p.arcs = c.arcs;
        p.arrival = c.arrival;
        p.slack = node.required - c.arrival;
        p.endpoint = node.owner;
        double at = 0.0;
        const std::size_t first =
            c.arcs.empty() ? c.node : arcs[c.arcs.front()].from;
        p.source = nodes[first].owner;
        p.points.push_back({nodes[first].name, 0.0, 0.0, ""});
        for (const std::size_t arc_id : c.arcs) {
          const TimingArc& arc = arcs[arc_id];
          at += arc.delay;
          p.points.push_back({nodes[arc.to].name, at, arc.delay, arc.net});
          p.degraded = p.degraded || arc.degraded || arc.failed;
          p.failed = p.failed || arc.failed;
        }
        result.paths.push_back(std::move(p));
      }
      continue;
    }
    for (const std::size_t arc_id : node.fanout) {
      if (!traversable(arc_id)) continue;
      const TimingArc& arc = arcs[arc_id];
      if (!admissible(arc.to)) continue;
      Candidate child;
      child.node = arc.to;
      child.arrival = c.arrival + arc.delay;
      child.mask = c.mask | own_bits[arc.to];
      child.bound = child.arrival + suffix[arc.to];
      child.arcs = c.arcs;
      child.arcs.push_back(arc_id);
      heap.push(std::move(child));
    }
  }
  return result;
}

}  // namespace awesim::timing
