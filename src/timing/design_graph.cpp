#include "timing/design_graph.h"

#include <algorithm>
#include <cstddef>
#include <limits>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace awesim::timing {

namespace {

/// Index view of the gate graph: gates numbered in name order (the
/// Design's gate map is sorted), edges driver -> sink per net sink
/// that names a known gate.
struct GateGraph {
  std::vector<std::string> names;           // index -> gate name
  std::map<std::string, std::size_t> ids;   // gate name -> index
  std::vector<std::vector<std::size_t>> out;  // deduplicated, sorted
  std::vector<std::vector<std::size_t>> out_multi;  // with multiplicity
  std::vector<std::size_t> in_degree;       // over deduplicated edges
};

GateGraph build_graph(const Design& design) {
  GateGraph g;
  g.names.reserve(design.gates().size());
  for (const auto& [name, gate] : design.gates()) {
    (void)gate;
    g.ids.emplace(name, g.names.size());
    g.names.push_back(name);
  }
  const std::size_t n = g.names.size();
  g.out.assign(n, {});
  g.out_multi.assign(n, {});
  g.in_degree.assign(n, 0);
  for (std::size_t i = 0; i < design.net_count(); ++i) {
    const auto du = g.ids.find(design.net_driver(i));
    if (du == g.ids.end()) continue;
    for (const auto& [sink, node] : design.net_at(i).sink_node) {
      (void)node;
      const auto su = g.ids.find(sink);
      if (su == g.ids.end()) continue;  // design output, not a gate
      g.out_multi[du->second].push_back(su->second);
    }
  }
  for (std::size_t u = 0; u < n; ++u) {
    auto edges = g.out_multi[u];
    std::sort(edges.begin(), edges.end());
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
    g.out[u] = std::move(edges);
    for (const std::size_t v : g.out[u]) ++g.in_degree[v];
  }
  return g;
}

/// Iterative Tarjan strongly-connected components, visiting roots in
/// index (= gate name) order so component discovery is deterministic.
std::vector<std::vector<std::size_t>> strongly_connected(
    const GateGraph& g) {
  const std::size_t n = g.names.size();
  constexpr std::size_t kUnset = std::numeric_limits<std::size_t>::max();
  std::vector<std::size_t> index(n, kUnset), lowlink(n, 0);
  std::vector<char> on_stack(n, 0);
  std::vector<std::size_t> stack;
  std::vector<std::vector<std::size_t>> components;
  std::size_t next_index = 0;

  struct Frame {
    std::size_t v;
    std::size_t edge = 0;
  };
  std::vector<Frame> call;
  for (std::size_t root = 0; root < n; ++root) {
    if (index[root] != kUnset) continue;
    call.push_back({root});
    while (!call.empty()) {
      Frame& f = call.back();
      if (f.edge == 0) {
        index[f.v] = lowlink[f.v] = next_index++;
        stack.push_back(f.v);
        on_stack[f.v] = 1;
      }
      bool descended = false;
      while (f.edge < g.out[f.v].size()) {
        const std::size_t w = g.out[f.v][f.edge++];
        if (index[w] == kUnset) {
          call.push_back({w});
          descended = true;
          break;
        }
        if (on_stack[w]) {
          lowlink[f.v] = std::min(lowlink[f.v], index[w]);
        }
      }
      if (descended) continue;
      if (lowlink[f.v] == index[f.v]) {
        std::vector<std::size_t> comp;
        for (;;) {
          const std::size_t w = stack.back();
          stack.pop_back();
          on_stack[w] = 0;
          comp.push_back(w);
          if (w == f.v) break;
        }
        std::sort(comp.begin(), comp.end());
        components.push_back(std::move(comp));
      }
      const std::size_t done = f.v;
      call.pop_back();
      if (!call.empty()) {
        lowlink[call.back().v] =
            std::min(lowlink[call.back().v], lowlink[done]);
      }
    }
  }
  return components;
}

/// Shortest loop through `start` restricted to `members`: BFS with
/// sorted adjacency, then walk parents back from the predecessor of
/// the closing edge.
std::vector<std::size_t> loop_through(const GateGraph& g,
                                      std::size_t start,
                                      const std::set<std::size_t>& members) {
  constexpr std::size_t kUnset = std::numeric_limits<std::size_t>::max();
  std::vector<std::size_t> queue{start};
  std::map<std::size_t, std::size_t> parent;  // node -> predecessor
  std::size_t closer = kUnset;
  for (std::size_t head = 0; head < queue.size() && closer == kUnset;
       ++head) {
    const std::size_t u = queue[head];
    for (const std::size_t v : g.out[u]) {
      if (v == start) {
        closer = u;
        break;
      }
      if (members.count(v) == 0 || parent.count(v) != 0) continue;
      parent.emplace(v, u);
      queue.push_back(v);
    }
  }
  std::vector<std::size_t> path;
  if (closer == kUnset) return path;  // cannot happen inside an SCC
  for (std::size_t v = closer; v != start; v = parent.at(v)) {
    path.push_back(v);
  }
  path.push_back(start);
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace

GraphFindings audit_graph(const Design& design,
                          const DesignGraphOptions& options) {
  GraphFindings out;
  const GateGraph g = build_graph(design);
  const std::size_t n = g.names.size();

  // --- Cycles: one representative loop per nontrivial SCC.
  std::vector<char> cyclic(n, 0);
  for (const auto& comp : strongly_connected(g)) {
    const bool self_loop =
        comp.size() == 1 &&
        std::binary_search(g.out[comp[0]].begin(), g.out[comp[0]].end(),
                           comp[0]);
    if (comp.size() < 2 && !self_loop) continue;
    for (const std::size_t v : comp) cyclic[v] = 1;
    const std::set<std::size_t> members(comp.begin(), comp.end());
    CyclePath cycle;
    for (const std::size_t v : loop_through(g, comp[0], members)) {
      cycle.gates.push_back(g.names[v]);
    }
    out.cycles.push_back(std::move(cycle));
  }
  std::sort(out.cycles.begin(), out.cycles.end(),
            [](const CyclePath& a, const CyclePath& b) {
              return a.gates < b.gates;
            });

  // --- Sources and the undriven rule.
  const std::set<std::string> declared(design.primary_inputs().begin(),
                                       design.primary_inputs().end());
  std::vector<char> source(n, 0);
  for (std::size_t v = 0; v < n; ++v) {
    const bool zero_fan_in = g.in_degree[v] == 0;
    const bool is_pi = declared.count(g.names[v]) != 0;
    if (zero_fan_in || is_pi) source[v] = 1;
    if (zero_fan_in && !is_pi) out.undriven.push_back(g.names[v]);
  }

  // --- Forward reachability from every source.
  std::vector<char> reached(n, 0);
  std::vector<std::size_t> queue;
  for (std::size_t v = 0; v < n; ++v) {
    if (source[v]) {
      reached[v] = 1;
      queue.push_back(v);
    }
  }
  for (std::size_t head = 0; head < queue.size(); ++head) {
    for (const std::size_t w : g.out[queue[head]]) {
      if (!reached[w]) {
        reached[w] = 1;
        queue.push_back(w);
      }
    }
  }
  for (std::size_t v = 0; v < n; ++v) {
    if (!reached[v]) out.unreachable.push_back(g.names[v]);
  }

  // --- Per-net rules: sinkless nets and fanout explosions.
  for (std::size_t i = 0; i < design.net_count(); ++i) {
    const Net& net = design.net_at(i);
    if (net.sink_node.empty()) out.sinkless_nets.push_back(net.name);
    if (net.sink_node.size() > options.fanout_threshold) {
      out.fanout_explosions.push_back(
          {net.name, design.net_driver(i), net.sink_node.size()});
    }
  }

  // --- Reconvergence: saturating path counts over the acyclic part
  // (Kahn order; cycle members never level and are skipped).
  if (options.reconvergence_paths > 0) {
    constexpr std::size_t kCap = std::numeric_limits<std::size_t>::max() / 2;
    std::vector<std::size_t> degree(n, 0), paths(n, 0), depth(n, 0);
    for (std::size_t u = 0; u < n; ++u) {
      for (const std::size_t v : g.out_multi[u]) ++degree[v];
    }
    std::vector<std::size_t> ready;
    for (std::size_t v = 0; v < n; ++v) {
      if (degree[v] == 0) {
        ready.push_back(v);
        paths[v] = 1;
      }
    }
    for (std::size_t head = 0; head < ready.size(); ++head) {
      const std::size_t u = ready[head];
      if (source[u] && paths[u] == 0) paths[u] = 1;
      for (const std::size_t v : g.out_multi[u]) {
        paths[v] = std::min(kCap, paths[v] + std::min(kCap, paths[u]));
        depth[v] = std::max(depth[v], depth[u] + 1);
        if (--degree[v] == 0) ready.push_back(v);
      }
    }
    for (std::size_t v = 0; v < n; ++v) {
      if (paths[v] >= options.reconvergence_paths) {
        out.reconvergences.push_back({g.names[v], paths[v], depth[v]});
      }
    }
  }
  return out;
}

}  // namespace awesim::timing
