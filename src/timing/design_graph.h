// Gate-graph connectivity primitives for the design-scope audit.
//
// The analyzer's levelization (analyzer.cpp) already *dies* on a
// combinational cycle -- with a bare "cycle or unreachable gates"
// string and no names.  These primitives compute, purely from the
// Design's connectivity (no matrices, no values), everything the audit
// tier reports about graph shape:
//
//   * combinational cycles, each as an explicit ordered loop path
//     (gate -> gate -> ... -> first gate), deduplicated per strongly
//     connected component;
//   * undriven endpoints: gates with no incoming net that were never
//     declared primary inputs (the analyzer silently pins their
//     arrival to 0 -- usually a missing connection, not a decision);
//   * dead logic: gates unreachable from any source (declared PI or
//     zero-fan-in gate) -- only cycles can produce these -- plus nets
//     that drive no sink at all (the computed value is dropped);
//   * fanout explosions: nets whose sink count exceeds a threshold
//     (each sink pin loads the stage; past a few dozen the stage delay
//     model and the physical net are both in trouble);
//   * reconvergent fanout: source-to-gate path counts from a
//     saturating DAG DP -- a pin whose path count passes the threshold
//     sits behind deep reconvergence (path-based STA there is
//     exponential; worth knowing before asking for K-worst paths).
//
// Everything is deterministic: gates iterate in name order (the
// Design's gate map is ordered), nets in insertion order, and every
// result list is sorted by its natural key.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "timing/analyzer.h"

namespace awesim::timing {

struct DesignGraphOptions {
  /// Nets with more sinks than this are reported as fanout explosions.
  std::size_t fanout_threshold = 32;
  /// Gates whose source-to-pin path count reaches this are reported as
  /// reconvergence hot spots (counts saturate; 0 disables the rule).
  std::size_t reconvergence_paths = 1024;
};

/// One combinational cycle: the ordered gate names around the loop,
/// starting from the lexicographically smallest member; the edge from
/// the last entry back to the first closes the loop.
struct CyclePath {
  std::vector<std::string> gates;
};

/// A net whose sink count passed the fanout threshold.
struct FanoutRecord {
  std::string net;
  std::string driver;
  std::size_t fanout = 0;
};

/// A gate input sitting behind heavy reconvergence.
struct ReconvergenceRecord {
  std::string gate;
  /// Saturating count of distinct source-to-pin paths.
  std::size_t paths = 0;
  /// Levelized depth of the gate (longest edge count from a source).
  std::size_t depth = 0;
};

struct GraphFindings {
  /// Each strongly connected component with >= 2 gates (or a self
  /// loop) yields exactly one representative loop path.
  std::vector<CyclePath> cycles;
  /// Name-sorted gates with no incoming net and no primary-input
  /// declaration.
  std::vector<std::string> undriven;
  /// Name-sorted gates unreachable from every source.
  std::vector<std::string> unreachable;
  /// Nets (insertion order) whose sink map is empty: the driver's
  /// output is computed and dropped.
  std::vector<std::string> sinkless_nets;
  std::vector<FanoutRecord> fanout_explosions;
  std::vector<ReconvergenceRecord> reconvergences;

  bool clean() const {
    return cycles.empty() && undriven.empty() && unreachable.empty() &&
           sinkless_nets.empty() && fanout_explosions.empty() &&
           reconvergences.empty();
  }
};

/// Run every graph rule over the design's gate-level connectivity.
/// Never throws on content: a cyclic design yields CyclePath records,
/// not an exception.
GraphFindings audit_graph(const Design& design,
                          const DesignGraphOptions& options = {});

}  // namespace awesim::timing
