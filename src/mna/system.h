// Modified nodal analysis (MNA) formulation of a linear circuit.
//
// Produces the pair of real matrices (G, C) and the stimulus vectors such
// that the circuit's behaviour is
//
//     G x(t) + C x'(t) = b(t),        b(t) = sum_k [db0_k + db1_k (t-t_k)]+
//
// with unknowns x = [node voltages (ground eliminated); branch currents of
// voltage sources, inductors, VCVS and CCVS].  In the Laplace domain with
// initial conditions,
//
//     (G + sC) X(s) = B(s) + C x(0-),
//
// which is exactly the form AWE's moment recursion (Section 3.2 of the
// paper) and the reference transient simulator both consume.
//
// Matrices are assembled as sparse triplets; small systems factor densely,
// large ones use the sparse Gilbert-Peierls LU with RCM ordering -- either
// way a single factorization of G is cached and reused for every moment,
// and shifted systems (G + aC) needed by the simulator's companion models
// and the sigma-limit computations are cached per coefficient a.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "circuit/circuit.h"
#include "core/diagnostic.h"
#include "la/low_rank.h"
#include "la/lu.h"
#include "la/matrix.h"
#include "la/sparse.h"

namespace awesim::mna {

/// A singular MNA system that could not be resolved (gmin disabled, or the
/// gmin retry failed too).  Derives from la::SingularMatrixError so
/// existing catch sites keep working, but carries the full structured
/// diagnostic -- including the *names* of the floating nodes -- instead of
/// a bare pivot index.
class SingularSystemError : public la::SingularMatrixError {
 public:
  SingularSystemError(core::Diagnostic diag, std::size_t pivot_index)
      : la::SingularMatrixError(pivot_index),
        diag_(std::move(diag)),
        what_(diag_.to_string()) {}

  const char* what() const noexcept override { return what_.c_str(); }
  const core::Diagnostic& diagnostic() const { return diag_; }

 private:
  core::Diagnostic diag_;
  std::string what_;
};

struct Options {
  /// Conductance added from every node to ground when the G matrix proves
  /// singular (floating nodes: nodes reached only through capacitors, as
  /// discussed for the paper's charge-conservation case).  Zero disables
  /// the retry and lets SingularMatrixError propagate.
  double gmin = 1e-12;

  /// Systems of at least this dimension factor with the sparse LU.
  std::size_t sparse_threshold = 192;
};

/// Cumulative solver-cost counters of one MnaSystem (one thread owns a
/// system, so these are plain integers; see core::Stats for aggregation
/// across threads).  Substitutions count solves against the cached
/// factorization of G -- the AWE hot path the paper's Fig. 19 argument
/// amortizes -- not shifted-system solves.
struct SolveStats {
  std::size_t factorizations = 0;
  std::size_t substitutions = 0;
};

/// One merged stimulus breakpoint: at `time`, the MNA right-hand side
/// jumps by `value_jump` and its slope changes by `slope_change`.
struct SourceEvent {
  double time = 0.0;
  la::RealVector value_jump;    // size dim()
  la::RealVector slope_change;  // size dim()
};

/// A factored linear system, dense or sparse behind one interface.
class Solver {
 public:
  explicit Solver(la::Lu<double> dense) : impl_(std::move(dense)) {}
  explicit Solver(la::SparseLu sparse) : impl_(std::move(sparse)) {}
  explicit Solver(la::LowRankSolver low_rank) : impl_(std::move(low_rank)) {}

  la::RealVector solve(const la::RealVector& rhs) const {
    return std::visit([&](const auto& lu) { return lu.solve(rhs); },
                      impl_);
  }

  /// Batched solve via the cache-blocked panel kernels; per-RHS results
  /// are bitwise identical to solve() on each vector in order.
  std::vector<la::RealVector> solve_multi(
      const std::vector<la::RealVector>& rhs) const {
    return std::visit([&](const auto& lu) { return lu.solve_multi(rhs); },
                      impl_);
  }

  bool is_sparse() const {
    return std::holds_alternative<la::SparseLu>(impl_);
  }

  /// True if this solver is a Sherman-Morrison-corrected view of some
  /// donor factorization rather than a factorization of its own.
  bool is_low_rank() const {
    return std::holds_alternative<la::LowRankSolver>(impl_);
  }

 private:
  std::variant<la::Lu<double>, la::SparseLu, la::LowRankSolver> impl_;
};

class MnaSystem {
 public:
  explicit MnaSystem(const circuit::Circuit& ckt, Options options = {});

  /// Number of MNA unknowns.
  std::size_t dim() const { return dim_; }

  /// The circuit this system was built from.
  const circuit::Circuit& circuit() const { return *ckt_; }

  /// Index of a (non-ground) node voltage in the unknown vector.
  /// Throws std::invalid_argument for ground.
  std::size_t node_index(circuit::NodeId node) const;

  /// Index of the branch current unknown of a named element (voltage
  /// source, inductor, VCVS, or CCVS); nullopt if the element carries no
  /// branch unknown.
  std::optional<std::size_t> branch_index(std::string_view element) const;

  /// Dense G and C (built lazily; intended for analyses like the exact
  /// eigenvalue pole extraction and for tests -- O(n^2) memory).
  const la::RealMatrix& G() const;
  const la::RealMatrix& C() const;

  /// Sparse views (always available, no densification).
  const la::SparseMatrix& g_sparse() const { return g_sparse_; }
  const la::SparseMatrix& c_sparse() const { return c_sparse_; }

  /// True if this system factors with the sparse path.
  bool uses_sparse() const { return dim_ >= options_.sparse_threshold; }

  /// True if the gmin retry was needed (the circuit has floating nodes).
  bool used_gmin() const;

  /// Names of nodes with no conductive path to ground: reachable only
  /// through capacitors (or through nothing at all).  These are the
  /// usual culprits when the G factorization hits a singular pivot; the
  /// paper's charge-conservation discussion covers why a steady state
  /// needs the extra equation a tiny gmin leak supplies.
  std::vector<std::string> floating_node_names() const;

  /// Structured diagnostics accumulated by this system (floating-node
  /// reports, gmin fallback records).  Appended to, never cleared.
  const core::Diagnostics& diagnostics() const { return diagnostics_; }

  /// RHS value at t = 0- (all sources at their initial values, for the
  /// operating point that initial conditions are measured against).
  const la::RealVector& rhs_initial() const { return rhs_initial_; }

  /// Stimulus breakpoints, merged over all sources, ascending in time.
  const std::vector<SourceEvent>& events() const { return events_; }

  /// Full RHS vector b(t); for the transient simulator.
  la::RealVector rhs_at(double t) const;

  /// Initial MNA vector x(0-): the DC equilibrium at the initial source
  /// values, overridden by explicit initial conditions (.ic node voltages,
  /// capacitor ICs, inductor current ICs).  This is the shared starting
  /// state of both the AWE engine and the transient simulator; explicit
  /// ICs make it a nonequilibrium state (the paper's Section 5.2).
  const la::RealVector& initial_state() const;

  /// Solve G x = rhs reusing the cached factorization of G.
  la::RealVector solve(const la::RealVector& rhs) const;

  /// Solve G X = RHS for a block of right-hand sides with one cached
  /// factorization (the paper's "factor once, substitute 2q-1 times"
  /// pattern generalized across atoms).  Results are per-vector
  /// identical to calling solve() on each column in order.
  std::vector<la::RealVector> solve_multi(
      const std::vector<la::RealVector>& rhs) const;

  /// Cumulative factorization/substitution counts for this system.
  const SolveStats& solve_stats() const { return solve_stats_; }

  /// Factored (G + a*C); cached per coefficient.  Used by the transient
  /// simulator's companion models (a = 1/h or 2/h) and by the
  /// sigma-limit initial-value computations (a = sigma).
  const Solver& shifted(double a) const;

  /// The cached factorization of G as a shareable handle (factoring it
  /// now if this system never solved).  The handle stays valid after the
  /// system dies, so a stage cache can keep LU factors alive across
  /// re-analyses of content-identical circuits.
  std::shared_ptr<const Solver> shared_g_solver() const;

  /// Adopt a factorization of G produced by a *content-identical* system
  /// (same stamped G and C triplets -- the caller's contract, enforced in
  /// `timing::Session` by exact content-key equality, never by hash
  /// alone).  Replays the donor's gmin flag and factor-time diagnostics
  /// so every observable of this system matches what a fresh
  /// factorization would have produced; only the LU work itself is
  /// skipped (solve_stats().factorizations stays at 0 for the adopted
  /// factor).
  void adopt_g_solver(std::shared_ptr<const Solver> solver, bool used_gmin,
                      const core::Diagnostics& factor_diagnostics) const;

  /// Rank-1 stamp of changing the named element's value from
  /// `base_value` (the value a donor factorization was built with) to
  /// its value in *this* circuit:
  ///
  ///   * Resistor: G changes by dg (e_a - e_b)(e_a - e_b)^T with
  ///     dg = 1/value - 1/base_value -- a genuine rank-1 update;
  ///   * Capacitor / Inductor: the value lives only in C (the inductor's
  ///     G entries are value-independent branch hookups), so G is
  ///     unchanged -- returned as an empty (rank-0) update;
  ///   * anything else (sources, controlled sources): nullopt -- the
  ///     caller must refactorize.
  ///
  /// nullopt is also returned for an unknown element name or a
  /// non-finite delta (e.g. a resistor driven to zero).  The update is
  /// expressed in this system's unknown indexing; it is only meaningful
  /// against a donor whose circuit is topologically identical (same
  /// elements, same node order) -- the caller's contract.
  std::optional<la::RankOneUpdate> apply_delta(std::string_view element,
                                               double base_value) const;

  /// Adopt a donor factorization of a *value-perturbed* content sibling
  /// through Sherman-Morrison-Woodbury corrections: `base_values` lists
  /// (element name, donor-time value) for every element whose value
  /// differs from the donor circuit.  Builds the rank-1 stamps with
  /// apply_delta() and accumulates them into a la::LowRankSolver over
  /// the donor.  Returns false -- leaving this system untouched, caller
  /// refactorizes -- if any delta is unsupported or the solver refuses
  /// an update (rank cap, drift watchdog, `la.lowrank` fault probe).
  /// With every delta rank-0 the donor is adopted directly (bit-exact).
  /// The donor's gmin flag composes: both sides see G + gmin*I.
  bool adopt_low_rank_solver(std::shared_ptr<const Solver> donor,
                             bool used_gmin,
                             const core::Diagnostics& factor_diagnostics,
                             const std::vector<std::pair<std::string, double>>&
                                 base_values,
                             const la::LowRankOptions& options) const;

  /// y = C x (sparse multiply).
  la::RealVector apply_C(const la::RealVector& x) const;

  /// Infinity norm of G, for conditioning diagnostics.
  double g_norm_inf() const { return g_sparse_.to_dense().norm_inf(); }

 private:
  void stamp(const circuit::Circuit& ckt);
  void build_events(const circuit::Circuit& ckt);
  Solver factor(double shift) const;  // builds (G + shift*C) solver

  const circuit::Circuit* ckt_;
  Options options_;
  std::size_t dim_ = 0;
  std::vector<la::Triplet> g_triplets_;
  std::vector<la::Triplet> c_triplets_;
  la::SparseMatrix g_sparse_;
  la::SparseMatrix c_sparse_;
  mutable std::optional<la::RealMatrix> g_dense_;
  mutable std::optional<la::RealMatrix> c_dense_;
  la::RealVector rhs_initial_;
  mutable la::RealVector x0_;
  mutable bool x0_built_ = false;
  std::vector<SourceEvent> events_;
  std::vector<std::pair<std::string, std::size_t>> branch_indices_;
  mutable std::shared_ptr<const Solver> g_solver_;
  mutable std::map<double, std::unique_ptr<Solver>> shifted_;
  mutable bool used_gmin_ = false;
  mutable SolveStats solve_stats_;
  mutable core::Diagnostics diagnostics_;
};

}  // namespace awesim::mna
