#include "mna/system.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>

#include "core/fault.h"
#include "obs/trace.h"

namespace awesim::mna {

using circuit::Element;
using circuit::ElementKind;
using circuit::kGround;

namespace {

// Times closer than this (relative to the overall stimulus span) are merged
// into one event.
constexpr double kEventMergeTolerance = 1e-15;

}  // namespace

MnaSystem::MnaSystem(const circuit::Circuit& ckt, Options options)
    : ckt_(&ckt), options_(options) {
  ckt.validate();
  stamp(ckt);
  build_events(ckt);
}

std::size_t MnaSystem::node_index(circuit::NodeId node) const {
  if (node == kGround) {
    throw std::invalid_argument("MnaSystem: ground has no unknown");
  }
  return static_cast<std::size_t>(node) - 1;
}

std::optional<std::size_t> MnaSystem::branch_index(
    std::string_view element) const {
  for (const auto& [name, idx] : branch_indices_) {
    if (name == element) return idx;
  }
  return std::nullopt;
}

void MnaSystem::stamp(const circuit::Circuit& ckt) {
  const std::size_t num_nodes = ckt.node_count() - 1;  // ground eliminated

  // First pass: assign branch-current unknowns.
  std::size_t next_branch = num_nodes;
  for (const auto& e : ckt.elements()) {
    switch (e.kind) {
      case ElementKind::VoltageSource:
      case ElementKind::Inductor:
      case ElementKind::Vcvs:
      case ElementKind::Ccvs:
        branch_indices_.emplace_back(e.name, next_branch++);
        break;
      default:
        break;
    }
  }
  dim_ = next_branch;
  rhs_initial_.assign(dim_, 0.0);

  // Row/column index of a node, or nullopt for ground.
  auto idx = [&](circuit::NodeId node) -> std::optional<std::size_t> {
    if (node == kGround) return std::nullopt;
    return node_index(node);
  };
  auto stamp_pair = [&](std::vector<la::Triplet>& m, circuit::NodeId a,
                        circuit::NodeId b, double v) {
    const auto ia = idx(a);
    const auto ib = idx(b);
    if (ia) m.push_back({*ia, *ia, v});
    if (ib) m.push_back({*ib, *ib, v});
    if (ia && ib) {
      m.push_back({*ia, *ib, -v});
      m.push_back({*ib, *ia, -v});
    }
  };
  auto branch_of = [&](std::string_view name) -> std::size_t {
    const auto b = branch_index(name);
    if (!b) {
      throw std::invalid_argument("MnaSystem: no branch current for '" +
                                  std::string(name) + "'");
    }
    return *b;
  };
  auto stamp_branch_voltage = [&](std::size_t br, circuit::NodeId pos,
                                  circuit::NodeId neg) {
    const auto ip = idx(pos);
    const auto in = idx(neg);
    if (ip) {
      g_triplets_.push_back({*ip, br, 1.0});
      g_triplets_.push_back({br, *ip, 1.0});
    }
    if (in) {
      g_triplets_.push_back({*in, br, -1.0});
      g_triplets_.push_back({br, *in, -1.0});
    }
  };

  for (const auto& e : ckt.elements()) {
    switch (e.kind) {
      case ElementKind::Resistor:
        stamp_pair(g_triplets_, e.pos, e.neg, 1.0 / e.value);
        break;
      case ElementKind::Capacitor:
        stamp_pair(c_triplets_, e.pos, e.neg, e.value);
        break;
      case ElementKind::Inductor: {
        const std::size_t br = branch_of(e.name);
        stamp_branch_voltage(br, e.pos, e.neg);
        c_triplets_.push_back({br, br, -e.value});
        break;
      }
      case ElementKind::VoltageSource: {
        const std::size_t br = branch_of(e.name);
        stamp_branch_voltage(br, e.pos, e.neg);
        rhs_initial_[br] += e.stimulus.initial_value();
        break;
      }
      case ElementKind::CurrentSource: {
        // Positive stimulus current flows from pos through the source to
        // neg (SPICE convention).
        const auto ip = idx(e.pos);
        const auto in = idx(e.neg);
        const double i0 = e.stimulus.initial_value();
        if (ip) rhs_initial_[*ip] -= i0;
        if (in) rhs_initial_[*in] += i0;
        break;
      }
      case ElementKind::Vcvs: {
        const std::size_t br = branch_of(e.name);
        stamp_branch_voltage(br, e.pos, e.neg);
        const auto icp = idx(e.ctrl_pos);
        const auto icn = idx(e.ctrl_neg);
        if (icp) g_triplets_.push_back({br, *icp, -e.value});
        if (icn) g_triplets_.push_back({br, *icn, e.value});
        break;
      }
      case ElementKind::Vccs: {
        const auto ip = idx(e.pos);
        const auto in = idx(e.neg);
        const auto icp = idx(e.ctrl_pos);
        const auto icn = idx(e.ctrl_neg);
        if (ip && icp) g_triplets_.push_back({*ip, *icp, e.value});
        if (ip && icn) g_triplets_.push_back({*ip, *icn, -e.value});
        if (in && icp) g_triplets_.push_back({*in, *icp, -e.value});
        if (in && icn) g_triplets_.push_back({*in, *icn, e.value});
        break;
      }
      case ElementKind::Cccs: {
        const std::size_t ctrl = branch_of(e.ctrl_source);
        const auto ip = idx(e.pos);
        const auto in = idx(e.neg);
        if (ip) g_triplets_.push_back({*ip, ctrl, e.value});
        if (in) g_triplets_.push_back({*in, ctrl, -e.value});
        break;
      }
      case ElementKind::Ccvs: {
        const std::size_t br = branch_of(e.name);
        const std::size_t ctrl = branch_of(e.ctrl_source);
        stamp_branch_voltage(br, e.pos, e.neg);
        g_triplets_.push_back({br, ctrl, -e.value});
        break;
      }
    }
  }

  // Boundary-block macromodels: each macro's reduced internal unknowns
  // are appended after the branch currents, and its dense (ports+states)
  // stamps scatter into G/C with ground rows/columns dropped -- the
  // multiport generalization of stamp_pair.
  for (const auto& m : ckt.macros()) {
    const std::size_t dim = m.dim();
    std::vector<std::optional<std::size_t>> at(dim);
    for (std::size_t i = 0; i < m.ports.size(); ++i) {
      at[i] = idx(m.ports[i]);
    }
    for (std::size_t s = 0; s < m.states; ++s) {
      at[m.ports.size() + s] = dim_++;
    }
    for (std::size_t i = 0; i < dim; ++i) {
      if (!at[i]) continue;
      for (std::size_t j = 0; j < dim; ++j) {
        if (!at[j]) continue;
        const double gv = m.g[i * dim + j];
        const double cv = m.c[i * dim + j];
        if (gv != 0.0) g_triplets_.push_back({*at[i], *at[j], gv});
        if (cv != 0.0) c_triplets_.push_back({*at[i], *at[j], cv});
      }
    }
  }
  rhs_initial_.resize(dim_, 0.0);

  g_sparse_ = la::SparseMatrix::from_triplets(dim_, dim_, g_triplets_);
  c_sparse_ = la::SparseMatrix::from_triplets(dim_, dim_, c_triplets_);
}

const la::RealMatrix& MnaSystem::G() const {
  if (!g_dense_) g_dense_ = g_sparse_.to_dense();
  return *g_dense_;
}

const la::RealMatrix& MnaSystem::C() const {
  if (!c_dense_) c_dense_ = c_sparse_.to_dense();
  return *c_dense_;
}

void MnaSystem::build_events(const circuit::Circuit& ckt) {
  // Merge the per-source breakpoints into global events keyed by time.
  std::map<double, SourceEvent> merged;
  auto event_at = [&](double t) -> SourceEvent& {
    for (auto& [time, ev] : merged) {
      if (std::abs(time - t) <=
          kEventMergeTolerance * std::max(1.0, std::abs(time))) {
        return ev;
      }
    }
    SourceEvent ev;
    ev.time = t;
    ev.value_jump.assign(dim(), 0.0);
    ev.slope_change.assign(dim(), 0.0);
    return merged.emplace(t, std::move(ev)).first->second;
  };

  for (const auto& e : ckt.elements()) {
    if (e.kind != ElementKind::VoltageSource &&
        e.kind != ElementKind::CurrentSource) {
      continue;
    }
    for (const auto& seg : e.stimulus.segments()) {
      SourceEvent& ev = event_at(seg.time);
      if (e.kind == ElementKind::VoltageSource) {
        const std::size_t br = *branch_index(e.name);
        ev.value_jump[br] += seg.value_jump;
        ev.slope_change[br] += seg.slope_change;
      } else {
        if (e.pos != kGround) {
          ev.value_jump[node_index(e.pos)] -= seg.value_jump;
          ev.slope_change[node_index(e.pos)] -= seg.slope_change;
        }
        if (e.neg != kGround) {
          ev.value_jump[node_index(e.neg)] += seg.value_jump;
          ev.slope_change[node_index(e.neg)] += seg.slope_change;
        }
      }
    }
  }
  events_.clear();
  events_.reserve(merged.size());
  for (auto& [time, ev] : merged) events_.push_back(std::move(ev));
}

const la::RealVector& MnaSystem::initial_state() const {
  if (x0_built_) return x0_;
  // Start from the equilibrium the circuit sat at for t < 0 (all sources
  // at their initial values), then apply explicit overrides.
  x0_ = solve(rhs_initial_);
  for (const auto& [node, volts] : ckt_->initial_node_voltages()) {
    x0_[node_index(node)] = volts;
  }
  for (const auto& e : ckt_->elements()) {
    if (e.kind == ElementKind::Capacitor && e.initial_condition) {
      // v(pos) = v(neg) + IC; the neg-side voltage is whatever has been
      // established so far (ground = 0).
      const double vneg = e.neg == kGround ? 0.0 : x0_[node_index(e.neg)];
      if (e.pos != kGround) {
        x0_[node_index(e.pos)] = vneg + *e.initial_condition;
      }
    }
    if (e.kind == ElementKind::Inductor && e.initial_condition) {
      x0_[*branch_index(e.name)] = *e.initial_condition;
    }
  }
  x0_built_ = true;
  return x0_;
}

std::vector<std::string> MnaSystem::floating_node_names() const {
  // BFS from ground over elements that provide a conductive (G-matrix or
  // branch-equation) path: resistors, inductors, voltage sources, VCVS,
  // CCVS.  Capacitors couple charge but fix no DC voltage; current
  // sources impose no constraint between their terminals.  Nodes the
  // walk never reaches float.
  const std::size_t count = ckt_->node_count();
  std::vector<std::vector<circuit::NodeId>> adjacent(count);
  for (const auto& e : ckt_->elements()) {
    switch (e.kind) {
      case ElementKind::Resistor:
      case ElementKind::Inductor:
      case ElementKind::VoltageSource:
      case ElementKind::Vcvs:
      case ElementKind::Ccvs:
        adjacent[static_cast<std::size_t>(e.pos)].push_back(e.neg);
        adjacent[static_cast<std::size_t>(e.neg)].push_back(e.pos);
        break;
      default:
        break;
    }
  }
  // A reduction macro ties its ports together through the resistive
  // interior it collapsed: conductive between every port pair.
  for (const auto& m : ckt_->macros()) {
    for (std::size_t i = 1; i < m.ports.size(); ++i) {
      adjacent[static_cast<std::size_t>(m.ports[0])].push_back(m.ports[i]);
      adjacent[static_cast<std::size_t>(m.ports[i])].push_back(m.ports[0]);
    }
  }
  std::vector<bool> reached(count, false);
  std::queue<circuit::NodeId> frontier;
  reached[static_cast<std::size_t>(kGround)] = true;
  frontier.push(kGround);
  while (!frontier.empty()) {
    const circuit::NodeId at = frontier.front();
    frontier.pop();
    for (const circuit::NodeId next : adjacent[static_cast<std::size_t>(at)]) {
      if (!reached[static_cast<std::size_t>(next)]) {
        reached[static_cast<std::size_t>(next)] = true;
        frontier.push(next);
      }
    }
  }
  std::vector<std::string> names;
  for (std::size_t id = 1; id < count; ++id) {
    if (!reached[id]) {
      names.push_back(ckt_->node_name(static_cast<circuit::NodeId>(id)));
    }
  }
  return names;
}

Solver MnaSystem::factor(double shift) const {
  AWESIM_TRACE_SPAN("mna.factor");
  // Assemble (G + shift*C) triplets, optionally with the gmin retry.
  auto assemble = [&](double gmin) {
    std::vector<la::Triplet> t = g_triplets_;
    t.reserve(t.size() + c_triplets_.size() + dim_);
    for (const auto& trip : c_triplets_) {
      t.push_back({trip.row, trip.col, shift * trip.value});
    }
    if (gmin > 0.0) {
      const std::size_t num_nodes = ckt_->node_count() - 1;
      for (std::size_t i = 0; i < num_nodes; ++i) {
        t.push_back({i, i, gmin});
      }
    }
    return la::SparseMatrix::from_triplets(dim_, dim_, t);
  };

  auto build = [&](double gmin) -> Solver {
    if (core::fault_at("mna.factor")) {
      throw la::SingularMatrixError(0);
    }
    ++solve_stats_.factorizations;
    const la::SparseMatrix m = assemble(gmin);
    if (uses_sparse()) {
      return Solver(la::SparseLu(m));
    }
    return Solver(la::Lu<double>(m.to_dense()));
  };

  // Singular pivot: name the offending nodes instead of surfacing a bare
  // pivot index, then retry with gmin if allowed.
  auto singular_diagnostic = [&](const la::SingularMatrixError& e) {
    core::Diagnostic diag;
    diag.code = core::DiagCode::FloatingNodes;
    diag.severity = core::Severity::Warning;
    const std::vector<std::string> floating = floating_node_names();
    if (floating.empty()) {
      diag.code = core::DiagCode::SingularPivot;
      diag.message = "G factorization hit a singular pivot at index " +
                     std::to_string(e.pivot_index()) +
                     "; no floating nodes found (voltage-source loop or "
                     "degenerate topology?)";
    } else {
      diag.message =
          "G factorization singular: " + std::to_string(floating.size()) +
          " node(s) reachable only through capacitors";
      for (std::size_t i = 0; i < floating.size(); ++i) {
        if (i > 0) diag.node += ", ";
        diag.node += floating[i];
      }
    }
    return diag;
  };

  try {
    return build(0.0);
  } catch (const la::SingularMatrixError& e) {
    core::Diagnostic diag = singular_diagnostic(e);
    if (options_.gmin <= 0.0) {
      diag.severity = core::Severity::Fatal;
      diag.message += "; gmin fallback disabled";
      diagnostics_.push_back(diag);
      throw SingularSystemError(std::move(diag), e.pivot_index());
    }
    // Floating nodes: add gmin from every node to ground and retry.  This
    // realizes the paper's observation that isolated (capacitor-only)
    // nodes need the charge-conservation equation for a steady state; a
    // tiny leak resolves the indeterminacy while leaving the time range
    // of interest unaffected.
    try {
      Solver s = build(options_.gmin);
      used_gmin_ = true;
      core::Diagnostic resolved = diag;
      resolved.code = core::DiagCode::GminFallback;
      resolved.severity = core::Severity::Info;
      resolved.message += "; resolved by gmin leak to ground";
      resolved.condition_estimate = -1.0;
      diagnostics_.push_back(std::move(resolved));
      return s;
    } catch (const la::SingularMatrixError& e2) {
      diag.severity = core::Severity::Fatal;
      diag.message += "; gmin retry failed too";
      diagnostics_.push_back(diag);
      throw SingularSystemError(std::move(diag), e2.pivot_index());
    }
  }
}

la::RealVector MnaSystem::solve(const la::RealVector& rhs) const {
  if (!g_solver_) {
    g_solver_ = std::make_shared<const Solver>(factor(0.0));
  }
  ++solve_stats_.substitutions;
  return g_solver_->solve(rhs);
}

std::shared_ptr<const Solver> MnaSystem::shared_g_solver() const {
  if (!g_solver_) {
    g_solver_ = std::make_shared<const Solver>(factor(0.0));
  }
  return g_solver_;
}

void MnaSystem::adopt_g_solver(
    std::shared_ptr<const Solver> solver, bool used_gmin,
    const core::Diagnostics& factor_diagnostics) const {
  g_solver_ = std::move(solver);
  used_gmin_ = used_gmin;
  for (const auto& d : factor_diagnostics) diagnostics_.push_back(d);
}

std::vector<la::RealVector> MnaSystem::solve_multi(
    const std::vector<la::RealVector>& rhs) const {
  if (!g_solver_) {
    g_solver_ = std::make_shared<const Solver>(factor(0.0));
  }
  solve_stats_.substitutions += rhs.size();
  return g_solver_->solve_multi(rhs);
}

std::optional<la::RankOneUpdate> MnaSystem::apply_delta(
    std::string_view element, double base_value) const {
  const circuit::Element* found = nullptr;
  for (const auto& e : ckt_->elements()) {
    if (e.name == element) {
      found = &e;
      break;
    }
  }
  if (found == nullptr) return std::nullopt;
  switch (found->kind) {
    case circuit::ElementKind::Capacitor:
    case circuit::ElementKind::Inductor:
      // The value appears only in C; G is untouched.
      return la::RankOneUpdate{};
    case circuit::ElementKind::Resistor:
      break;
    default:
      return std::nullopt;
  }
  if (!(found->value > 0.0) || !(base_value > 0.0)) return std::nullopt;
  const double dg = 1.0 / found->value - 1.0 / base_value;
  if (!std::isfinite(dg)) return std::nullopt;
  la::RankOneUpdate up;
  if (dg == 0.0) return up;
  if (found->pos != kGround) {
    const std::size_t ia = node_index(found->pos);
    up.u.emplace_back(ia, dg);
    up.v.emplace_back(ia, 1.0);
  }
  if (found->neg != kGround) {
    const std::size_t ib = node_index(found->neg);
    up.u.emplace_back(ib, -dg);
    up.v.emplace_back(ib, -1.0);
  }
  return up;
}

bool MnaSystem::adopt_low_rank_solver(
    std::shared_ptr<const Solver> donor, bool used_gmin,
    const core::Diagnostics& factor_diagnostics,
    const std::vector<std::pair<std::string, double>>& base_values,
    const la::LowRankOptions& options) const {
  std::vector<la::RankOneUpdate> updates;
  updates.reserve(base_values.size());
  for (const auto& [name, base] : base_values) {
    std::optional<la::RankOneUpdate> up = apply_delta(name, base);
    if (!up) return false;
    if (!up->u.empty() && !up->v.empty()) updates.push_back(std::move(*up));
  }
  if (updates.empty()) {
    // Every delta was rank-0 on G: the donor factorization is exact.
    adopt_g_solver(std::move(donor), used_gmin, factor_diagnostics);
    return true;
  }
  const Solver* raw = donor.get();
  la::LowRankSolver corrected(
      dim_,
      [raw](const la::RealVector& b) { return raw->solve(b); },
      [raw](const std::vector<la::RealVector>& bs) {
        return raw->solve_multi(bs);
      },
      options);
  for (const auto& up : updates) {
    if (!corrected.add_update(up)) return false;
  }
  // The lambdas capture the raw donor pointer; keep the donor alive by
  // binding its shared handle into the published solver's deleter chain.
  auto holder = std::make_shared<std::pair<std::shared_ptr<const Solver>,
                                           Solver>>(
      std::move(donor), Solver(std::move(corrected)));
  g_solver_ = std::shared_ptr<const Solver>(holder, &holder->second);
  used_gmin_ = used_gmin;
  for (const auto& d : factor_diagnostics) diagnostics_.push_back(d);
  return true;
}

const Solver& MnaSystem::shifted(double a) const {
  auto it = shifted_.find(a);
  if (it == shifted_.end()) {
    it = shifted_.emplace(a, std::make_unique<Solver>(factor(a))).first;
  }
  return *it->second;
}

bool MnaSystem::used_gmin() const {
  if (!g_solver_) {
    g_solver_ = std::make_shared<const Solver>(factor(0.0));
  }
  return used_gmin_;
}

la::RealVector MnaSystem::rhs_at(double t) const {
  la::RealVector b = rhs_initial_;
  for (const auto& ev : events_) {
    if (t < ev.time) break;
    const double dt = t - ev.time;
    for (std::size_t i = 0; i < b.size(); ++i) {
      b[i] += ev.value_jump[i] + ev.slope_change[i] * dt;
    }
  }
  return b;
}

la::RealVector MnaSystem::apply_C(const la::RealVector& x) const {
  return c_sparse_.apply(x);
}

}  // namespace awesim::mna
