#include "obs/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace awesim::obs::json {

namespace {

[[noreturn]] void type_error(const char* want, Value::Type got) {
  throw std::runtime_error(std::string("json: expected ") + want +
                           ", value holds type #" +
                           std::to_string(static_cast<int>(got)));
}

void append_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char ch : s) {
    const unsigned char c = static_cast<unsigned char>(ch);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(ch);
        }
    }
  }
  out.push_back('"');
}

void append_number(std::string& out, double n) {
  if (!std::isfinite(n)) {
    out += "null";  // JSON has no NaN/Inf; see the header contract
    return;
  }
  char buf[40];
  // Integers up to 2^53 print without an exponent or decimal point.
  if (n == static_cast<double>(static_cast<long long>(n)) &&
      std::abs(n) < 9.0e15) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(n));
  } else {
    std::snprintf(buf, sizeof buf, "%.17g", n);
  }
  out += buf;
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) {
      fail(ParseErrorCode::TrailingData,
           "trailing characters after document");
    }
    return v;
  }

 private:
  [[noreturn]] void fail(ParseErrorCode code, const std::string& what) {
    throw ParseError(code, pos_, what);
  }

  /// Containers recurse through here; the depth cap turns adversarial
  /// nesting into a typed error before the call stack is at risk.
  struct DepthGuard {
    explicit DepthGuard(Parser& p) : parser(p) {
      if (++parser.depth_ > kMaxParseDepth) {
        parser.fail(ParseErrorCode::DepthExceeded,
                    "nesting deeper than " +
                        std::to_string(kMaxParseDepth) + " levels");
      }
    }
    ~DepthGuard() { --parser.depth_; }
    DepthGuard(const DepthGuard&) = delete;
    DepthGuard& operator=(const DepthGuard&) = delete;
    Parser& parser;
  };

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  char peek() {
    if (pos_ >= text_.size()) {
      fail(ParseErrorCode::UnexpectedEnd, "unexpected end of input");
    }
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(ParseErrorCode::BadSyntax,
           std::string("expected '") + c + "', got '" + peek() + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  Value parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value(parse_string());
      case 't':
        if (!consume_literal("true")) {
          fail(ParseErrorCode::BadLiteral, "bad literal");
        }
        return Value(true);
      case 'f':
        if (!consume_literal("false")) {
          fail(ParseErrorCode::BadLiteral, "bad literal");
        }
        return Value(false);
      case 'n':
        if (!consume_literal("null")) {
          fail(ParseErrorCode::BadLiteral, "bad literal");
        }
        return Value();
      default: return parse_number();
    }
  }

  Value parse_object() {
    const DepthGuard guard(*this);
    expect('{');
    Value obj = Value::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_ws();
      if (peek() != '"') {
        fail(ParseErrorCode::BadSyntax, "object key must be a string");
      }
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.set(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return obj;
    }
  }

  Value parse_array() {
    const DepthGuard guard(*this);
    expect('[');
    Value arr = Value::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return arr;
    }
  }

  unsigned parse_hex4() {
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = peek();
      ++pos_;
      code <<= 4;
      if (c >= '0' && c <= '9') {
        code |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        code |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail(ParseErrorCode::BadEscape, "bad \\u escape digit");
      }
    }
    return code;
  }

  void append_utf8(std::string& out, unsigned code) {
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (code >> 18)));
      out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) {
        fail(ParseErrorCode::UnterminatedString, "unterminated string");
      }
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char e = peek();
      ++pos_;
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned code = parse_hex4();
          if (code >= 0xD800 && code <= 0xDBFF) {
            // Surrogate pair: a low surrogate must follow.
            if (!consume_literal("\\u")) {
              fail(ParseErrorCode::BadEscape, "lone high surrogate");
            }
            const unsigned low = parse_hex4();
            if (low < 0xDC00 || low > 0xDFFF) {
              fail(ParseErrorCode::BadEscape, "bad low surrogate");
            }
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            fail(ParseErrorCode::BadEscape, "lone low surrogate");
          }
          append_utf8(out, code);
          break;
        }
        default:
          fail(ParseErrorCode::BadEscape, "bad escape character");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           ((text_[pos_] >= '0' && text_[pos_] <= '9') ||
            text_[pos_] == '.' || text_[pos_] == 'e' ||
            text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail(ParseErrorCode::BadNumber, "expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double n = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      fail(ParseErrorCode::BadNumber, "malformed number");
    }
    return Value(n);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t depth_ = 0;
};

}  // namespace

const char* to_string(ParseErrorCode code) {
  switch (code) {
    case ParseErrorCode::UnexpectedEnd: return "unexpected-end";
    case ParseErrorCode::UnterminatedString: return "unterminated-string";
    case ParseErrorCode::BadEscape: return "bad-escape";
    case ParseErrorCode::BadLiteral: return "bad-literal";
    case ParseErrorCode::BadNumber: return "bad-number";
    case ParseErrorCode::BadSyntax: return "bad-syntax";
    case ParseErrorCode::DepthExceeded: return "depth-exceeded";
    case ParseErrorCode::TrailingData: return "trailing-data";
  }
  return "unknown";
}

ParseError::ParseError(ParseErrorCode code, std::size_t offset,
                       const std::string& message)
    : std::runtime_error("json parse error at byte " +
                         std::to_string(offset) + ": " + message + " [" +
                         to_string(code) + "]"),
      code_(code),
      offset_(offset) {}

bool Value::as_bool() const {
  if (type_ != Type::Bool) type_error("bool", type_);
  return bool_;
}

double Value::as_number() const {
  if (type_ != Type::Number) type_error("number", type_);
  return number_;
}

const std::string& Value::as_string() const {
  if (type_ != Type::String) type_error("string", type_);
  return string_;
}

void Value::push_back(Value v) {
  if (type_ != Type::Array) type_error("array", type_);
  array_.push_back(std::move(v));
}

std::size_t Value::size() const {
  if (type_ == Type::Array) return array_.size();
  if (type_ == Type::Object) return object_.size();
  type_error("array or object", type_);
}

const Value& Value::at(std::size_t index) const {
  if (type_ != Type::Array) type_error("array", type_);
  if (index >= array_.size()) {
    throw std::runtime_error("json: array index out of range");
  }
  return array_[index];
}

void Value::set(std::string key, Value v) {
  if (type_ != Type::Object) type_error("object", type_);
  for (auto& [k, existing] : object_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  object_.emplace_back(std::move(key), std::move(v));
}

const Value* Value::find(std::string_view key) const {
  if (type_ != Type::Object) type_error("object", type_);
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const std::vector<std::pair<std::string, Value>>& Value::items() const {
  if (type_ != Type::Object) type_error("object", type_);
  return object_;
}

void Value::dump_to(std::string& out, int indent, int depth) const {
  const auto newline = [&](int d) {
    if (indent <= 0) return;
    out.push_back('\n');
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  switch (type_) {
    case Type::Null: out += "null"; break;
    case Type::Bool: out += bool_ ? "true" : "false"; break;
    case Type::Number: append_number(out, number_); break;
    case Type::String: append_escaped(out, string_); break;
    case Type::Array: {
      if (array_.empty()) {
        out += "[]";
        break;
      }
      out.push_back('[');
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out.push_back(',');
        newline(depth + 1);
        array_[i].dump_to(out, indent, depth + 1);
      }
      newline(depth);
      out.push_back(']');
      break;
    }
    case Type::Object: {
      if (object_.empty()) {
        out += "{}";
        break;
      }
      out.push_back('{');
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) out.push_back(',');
        newline(depth + 1);
        append_escaped(out, object_[i].first);
        out += indent > 0 ? ": " : ":";
        object_[i].second.dump_to(out, indent, depth + 1);
      }
      newline(depth);
      out.push_back('}');
      break;
    }
  }
}

std::string Value::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

Value parse(std::string_view text) {
  Parser parser(text);
  return parser.parse_document();
}

}  // namespace awesim::obs::json
