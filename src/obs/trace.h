// Phase-level scoped-span tracing for the AWE pipeline.
//
// The paper's headline claim is quantitative (Section I: a thousand times
// faster than simulation), so every perf PR needs to know *where the wall
// time goes*: the one-off LU factorization, the 2q-1 substitution moment
// recursion, the tiny q x q Hankel/root/residue matches, the timing
// wavefront jobs.  A span marks one executed phase instance:
//
//   void MnaSystem::factor(...) {
//     AWESIM_TRACE_SPAN("mna.factor");
//     ...
//   }
//
// Spans aggregate per phase name -- count, total/min/max wall seconds --
// into a process-wide registry that is safe to feed from the timing
// analyzer's worker threads (each Phase guards its accumulator with its
// own mutex; the name lookup is cached per call site in a function-local
// static).  Span *counts* are pure functions of the work performed, so
// they are bit-identical across thread counts; the seconds fields are
// wall-clock measurements and are not.
//
// The canonical span taxonomy (DESIGN.md section 9):
//   mna.factor       one (G + aC) LU factorization
//   engine.moments   moment-vector advancement / gathering
//   pade.hankel      eq. 24 Hankel assembly + LU solve
//   pade.roots       eq. 25 characteristic-polynomial rooting
//   engine.residues  eq. 20/29 (confluent) Vandermonde residue solve
//   timing.stage     one stage evaluation in the timing analyzer
//   parallel.job     one thread-pool job (wraps timing.stage)
//   session.reuse    one stage served from the Session stage cache
//                    (verified hit in the serial pre-pass)
//   session.invalidate  one cache entry dropped (failed verification
//                    or evicted); the stage is recomputed
//
// Cost model, so instrumentation can stay in hot paths:
//   * compiled out (-DAWESIM_TRACING=OFF): the macro expands to nothing;
//     zero code, zero data;
//   * compiled in, runtime-disabled (the default): one relaxed atomic
//     load per span;
//   * enabled (obs::set_tracing(true) or env AWESIM_TRACE=1): two
//     steady_clock reads plus one short mutex-protected accumulate.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#ifndef AWESIM_TRACING_ENABLED
#define AWESIM_TRACING_ENABLED 1
#endif

namespace awesim::obs {

/// Aggregate of all spans recorded against one phase name.
struct PhaseStats {
  std::uint64_t count = 0;
  double total_seconds = 0.0;
  double min_seconds = 0.0;  // 0 while count == 0
  double max_seconds = 0.0;

  void record(double seconds) {
    if (count == 0 || seconds < min_seconds) min_seconds = seconds;
    if (seconds > max_seconds) max_seconds = seconds;
    total_seconds += seconds;
    ++count;
  }

  /// Fold another aggregate in (counts and totals add, extrema widen).
  void merge(const PhaseStats& other) {
    if (other.count == 0) return;
    if (count == 0 || other.min_seconds < min_seconds) {
      min_seconds = other.min_seconds;
    }
    if (other.max_seconds > max_seconds) max_seconds = other.max_seconds;
    count += other.count;
    total_seconds += other.total_seconds;
  }
};

struct NamedPhaseStats {
  std::string name;
  PhaseStats stats;
};

/// A snapshot of the whole registry, sorted by phase name.
using PhaseBreakdown = std::vector<NamedPhaseStats>;

/// True when the span macro compiles to real instrumentation.
constexpr bool tracing_compiled_in() { return AWESIM_TRACING_ENABLED != 0; }

namespace detail {
extern std::atomic<bool> g_tracing_enabled;
}  // namespace detail

/// Runtime gate.  Defaults to the AWESIM_TRACE environment variable
/// (1/on/true); flip programmatically with set_tracing.
inline bool tracing_enabled() {
  return detail::g_tracing_enabled.load(std::memory_order_relaxed);
}
void set_tracing(bool enabled);

/// One named accumulator.  Stable address for the lifetime of the
/// process; spans record into it under its private mutex.
class Phase {
 public:
  explicit Phase(std::string name) : name_(std::move(name)) {}
  Phase(const Phase&) = delete;
  Phase& operator=(const Phase&) = delete;

  const std::string& name() const { return name_; }

  void record(double seconds) {
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.record(seconds);
  }

  PhaseStats read() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
  }

  void clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    stats_ = PhaseStats{};
  }

 private:
  std::string name_;
  mutable std::mutex mutex_;
  PhaseStats stats_;
};

/// Look up (or create) the accumulator for `name`.  The returned
/// reference never dangles; call sites cache it in a static.
Phase& phase(std::string_view name);

/// All phases with at least one recorded span, sorted by name.
PhaseBreakdown snapshot();

/// Zero every accumulator (phases stay registered).
void reset_phases();

/// The delta `now - before` per phase: counts and totals subtract
/// (clamped at zero), phases that saw no new spans are dropped.  The
/// min/max fields are the extrema *since the registry was last reset*,
/// not of the window, because extrema are not recoverable from two
/// aggregates.
PhaseBreakdown since(const PhaseBreakdown& before);

/// Merge `from` into `into` by phase name, keeping `into` sorted.
void merge_into(PhaseBreakdown& into, const PhaseBreakdown& from);

/// Subtract `what` from `into` by phase name (counts/totals clamped at
/// zero; entries that reach zero count are dropped).
void subtract_into(PhaseBreakdown& into, const PhaseBreakdown& what);

/// RAII span: measures construction-to-destruction wall time into a
/// Phase.  When tracing is runtime-disabled the constructor is one
/// relaxed atomic load and the destructor a null check.
class Span {
 public:
  explicit Span(Phase& target) {
    if (tracing_enabled()) {
      target_ = &target;
      start_ = std::chrono::steady_clock::now();
    }
  }
  ~Span() {
    if (target_ != nullptr) {
      target_->record(std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start_)
                          .count());
    }
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  Phase* target_ = nullptr;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace awesim::obs

#define AWESIM_OBS_CONCAT2(a, b) a##b
#define AWESIM_OBS_CONCAT(a, b) AWESIM_OBS_CONCAT2(a, b)

#if AWESIM_TRACING_ENABLED
/// Open a scoped span against phase `name` (a string literal from the
/// taxonomy above).  The phase lookup happens once per call site.
#define AWESIM_TRACE_SPAN(name)                                         \
  static ::awesim::obs::Phase& AWESIM_OBS_CONCAT(                       \
      awesim_obs_phase_, __LINE__) = ::awesim::obs::phase(name);        \
  ::awesim::obs::Span AWESIM_OBS_CONCAT(awesim_obs_span_, __LINE__)(    \
      AWESIM_OBS_CONCAT(awesim_obs_phase_, __LINE__))
#else
#define AWESIM_TRACE_SPAN(name) \
  do {                          \
  } while (false)
#endif
