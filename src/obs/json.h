// Minimal JSON value type, writer, and parser for the machine-readable
// observability outputs (BENCH_results.json, `critical_path_timing
// --json`).  No external dependency: the repo bakes in everything it
// needs, and the subset here -- null/bool/double/string/array/object with
// insertion-ordered keys -- is exactly what a schema-versioned results
// file requires.
//
// Writing: numbers print with %.17g (round-trippable doubles); NaN and
// infinities are not representable in JSON and are emitted as `null`, so
// "absent metric" and "non-finite metric" look identical to consumers --
// which is the contract the bench schema wants (a finite number or null,
// never "NaN").
//
// Parsing: strict recursive descent over UTF-8 text.  Throws
// json::ParseError (a std::runtime_error carrying the byte offset and a
// typed reason) on malformed input -- nothing is ever silently
// truncated or coerced.  \uXXXX escapes decode to UTF-8, surrogate
// pairs included.  Nesting depth is capped (kMaxParseDepth) so
// adversarial input ("[[[[..." from an untrusted service client)
// fails with DepthExceeded instead of overflowing the parser's stack.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace awesim::obs::json {

/// Maximum container nesting the parser accepts.  Deep enough for any
/// artifact this repo writes (BENCH_results.json nests 5 levels); far
/// below the recursion depth that would threaten the stack.
inline constexpr std::size_t kMaxParseDepth = 96;

/// Why a parse failed -- stable taxonomy for negative-path tests and for
/// the serve layer's structured invalid-request responses.
enum class ParseErrorCode {
  UnexpectedEnd,       // input ended inside a value
  UnterminatedString,  // closing '"' never arrived
  BadEscape,           // invalid \x escape or broken surrogate pair
  BadLiteral,          // not true/false/null
  BadNumber,           // number token strtod rejects
  BadSyntax,           // structural error (missing ':', stray comma, ...)
  DepthExceeded,       // more than kMaxParseDepth nested containers
  TrailingData,        // non-whitespace after the document
};

const char* to_string(ParseErrorCode code);

/// Parse failure: byte offset plus typed reason.  Subclasses
/// std::runtime_error so pre-existing catch sites keep working.
class ParseError : public std::runtime_error {
 public:
  ParseError(ParseErrorCode code, std::size_t offset,
             const std::string& message);

  ParseErrorCode code() const { return code_; }
  /// Byte offset into the input where the failure was detected.
  std::size_t offset() const { return offset_; }

 private:
  ParseErrorCode code_;
  std::size_t offset_;
};

class Value {
 public:
  enum class Type { Null, Bool, Number, String, Array, Object };

  Value() : type_(Type::Null) {}
  Value(bool b) : type_(Type::Bool), bool_(b) {}
  Value(double n) : type_(Type::Number), number_(n) {}
  Value(int n) : type_(Type::Number), number_(n) {}
  Value(long long n)
      : type_(Type::Number), number_(static_cast<double>(n)) {}
  Value(unsigned long long n)
      : type_(Type::Number), number_(static_cast<double>(n)) {}
  Value(const char* s) : type_(Type::String), string_(s) {}
  Value(std::string s) : type_(Type::String), string_(std::move(s)) {}

  static Value array() {
    Value v;
    v.type_ = Type::Array;
    return v;
  }
  static Value object() {
    Value v;
    v.type_ = Type::Object;
    return v;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::Null; }
  bool is_bool() const { return type_ == Type::Bool; }
  bool is_number() const { return type_ == Type::Number; }
  bool is_string() const { return type_ == Type::String; }
  bool is_array() const { return type_ == Type::Array; }
  bool is_object() const { return type_ == Type::Object; }

  /// Typed accessors; throw std::runtime_error on a type mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;

  /// Array access.
  void push_back(Value v);
  std::size_t size() const;
  const Value& at(std::size_t index) const;

  /// Object access (insertion-ordered; set replaces an existing key).
  void set(std::string key, Value v);
  const Value* find(std::string_view key) const;
  const std::vector<std::pair<std::string, Value>>& items() const;

  /// Serialize.  indent > 0 pretty-prints with that many spaces per
  /// level; indent == 0 emits the compact single-line form.
  std::string dump(int indent = 0) const;

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Value> array_;
  std::vector<std::pair<std::string, Value>> object_;
};

/// Parse a complete JSON document (trailing non-whitespace is an error).
/// Throws ParseError with a byte offset and typed reason on malformed
/// input.
Value parse(std::string_view text);

}  // namespace awesim::obs::json
