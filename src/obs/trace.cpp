#include "obs/trace.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <memory>

namespace awesim::obs {

namespace detail {
std::atomic<bool> g_tracing_enabled{false};
}  // namespace detail

namespace {

bool env_requests_tracing() {
  const char* value = std::getenv("AWESIM_TRACE");
  if (value == nullptr) return false;
  const std::string v(value);
  return v == "1" || v == "on" || v == "ON" || v == "true" || v == "TRUE";
}

// Arms the runtime gate from the environment before main() runs; the
// atomic itself is constant-initialized, so the order against other
// static initializers is immaterial.
const bool g_env_init = [] {
  if (env_requests_tracing()) {
    detail::g_tracing_enabled.store(true, std::memory_order_relaxed);
  }
  return true;
}();

struct Registry {
  std::mutex mutex;
  // std::map keeps snapshots name-sorted; unique_ptr keeps Phase
  // addresses stable across rehash-free inserts.
  std::map<std::string, std::unique_ptr<Phase>, std::less<>> phases;
};

Registry& registry() {
  static Registry* r = new Registry;  // leaked: spans may outlive exit paths
  return *r;
}

}  // namespace

void set_tracing(bool enabled) {
  (void)g_env_init;
  detail::g_tracing_enabled.store(enabled, std::memory_order_relaxed);
}

Phase& phase(std::string_view name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  auto it = r.phases.find(name);
  if (it == r.phases.end()) {
    it = r.phases
             .emplace(std::string(name),
                      std::make_unique<Phase>(std::string(name)))
             .first;
  }
  return *it->second;
}

PhaseBreakdown snapshot() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  PhaseBreakdown out;
  out.reserve(r.phases.size());
  for (const auto& [name, p] : r.phases) {
    const PhaseStats stats = p->read();
    if (stats.count > 0) out.push_back({name, stats});
  }
  return out;
}

void reset_phases() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  for (auto& [name, p] : r.phases) p->clear();
}

PhaseBreakdown since(const PhaseBreakdown& before) {
  PhaseBreakdown now = snapshot();
  subtract_into(now, before);
  return now;
}

void merge_into(PhaseBreakdown& into, const PhaseBreakdown& from) {
  for (const auto& entry : from) {
    auto it = std::lower_bound(
        into.begin(), into.end(), entry.name,
        [](const NamedPhaseStats& a, const std::string& name) {
          return a.name < name;
        });
    if (it != into.end() && it->name == entry.name) {
      it->stats.merge(entry.stats);
    } else {
      into.insert(it, entry);
    }
  }
}

void subtract_into(PhaseBreakdown& into, const PhaseBreakdown& what) {
  for (const auto& entry : what) {
    auto it = std::lower_bound(
        into.begin(), into.end(), entry.name,
        [](const NamedPhaseStats& a, const std::string& name) {
          return a.name < name;
        });
    if (it == into.end() || it->name != entry.name) continue;
    it->stats.count = it->stats.count >= entry.stats.count
                          ? it->stats.count - entry.stats.count
                          : 0;
    it->stats.total_seconds =
        std::max(0.0, it->stats.total_seconds - entry.stats.total_seconds);
    if (it->stats.count == 0) into.erase(it);
  }
}

}  // namespace awesim::obs
