#include "sim/transient.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <set>
#include <stdexcept>

#include "la/lu.h"

namespace awesim::sim {

namespace {

// RHS value just before time t (left limit, for stepping into a jump).
la::RealVector rhs_before(const mna::MnaSystem& mna, double t) {
  la::RealVector b = mna.rhs_initial();
  for (const auto& ev : mna.events()) {
    if (ev.time >= t) break;
    const double dt = t - ev.time;
    for (std::size_t i = 0; i < b.size(); ++i) {
      b[i] += ev.value_jump[i] + ev.slope_change[i] * dt;
    }
  }
  return b;
}

bool event_has_jump(const mna::SourceEvent& ev) {
  for (double v : ev.value_jump) {
    if (v != 0.0) return true;
  }
  return false;
}

}  // namespace

TransientSimulator::TransientSimulator(const circuit::Circuit& ckt,
                                       mna::Options mna_options)
    : mna_(ckt, mna_options) {}

waveform::Waveform TransientSimulator::run(
    const Probe& probe, double t_stop,
    const TransientOptions& options) const {
  if (t_stop <= 0.0) {
    throw std::invalid_argument("TransientSimulator: t_stop must be > 0");
  }
  if (probe.node == circuit::kGround) {
    throw std::invalid_argument("TransientSimulator: probe ground");
  }
  const double h =
      options.timestep > 0.0 ? options.timestep : t_stop / 2000.0;

  // Time grid: uniform steps plus every stimulus breakpoint in range, so a
  // discontinuity never lands mid-step.  Jump times are also marked so the
  // step leaving them can fall back to backward Euler.
  std::set<double> grid;
  const auto steps = static_cast<std::size_t>(std::ceil(t_stop / h));
  for (std::size_t i = 0; i <= steps; ++i) {
    grid.insert(std::min(t_stop, static_cast<double>(i) * h));
  }
  std::set<double> jump_times;
  for (const auto& ev : mna_.events()) {
    if (ev.time > 0.0 && ev.time < t_stop) grid.insert(ev.time);
    if (event_has_jump(ev)) jump_times.insert(ev.time);
  }
  std::vector<double> times(grid.begin(), grid.end());

  const std::size_t n = mna_.dim();
  const std::size_t out = mna_.node_index(probe.node);

  la::RealVector x = mna_.initial_state();
  std::vector<double> rec_t{0.0};
  std::vector<double> rec_v{x[out]};

  int be_remaining = std::max(1, options.be_startup_steps);
  for (std::size_t k = 1; k < times.size(); ++k) {
    const double t0 = times[k - 1];
    const double t1 = times[k];
    const double dt = t1 - t0;
    const bool after_jump = jump_times.count(t0) > 0;
    const bool use_be = options.method == Method::BackwardEuler ||
                        be_remaining > 0 || after_jump;

    la::RealVector rhs(n, 0.0);
    const mna::Solver* solver = nullptr;
    if (use_be) {
      // (G + C/dt) x1 = b(t1) + (C/dt) x0
      solver = &mna_.shifted(1.0 / dt);
      const la::RealVector cx = mna_.apply_C(x);
      // A jump scheduled exactly at t1 is applied on the step leaving t1,
      // so evaluate from the left here (t=0 jumps are already in rhs_at).
      rhs = (t1 > 0.0 && jump_times.count(t1) > 0) ? rhs_before(mna_, t1)
                                                   : mna_.rhs_at(t1);
      for (std::size_t i = 0; i < n; ++i) rhs[i] += cx[i] / dt;
    } else {
      // Trapezoidal: (G + 2C/dt) x1 = b(t1) + b(t0+) + (2C/dt - G) x0.
      solver = &mna_.shifted(2.0 / dt);
      const la::RealVector cx = mna_.apply_C(x);
      const la::RealVector gx = mna_.g_sparse().apply(x);
      // b(t1) evaluated from the left if t1 is itself a jump point.
      la::RealVector b1 = jump_times.count(t1) > 0 ? rhs_before(mna_, t1)
                                                   : mna_.rhs_at(t1);
      const la::RealVector b0 = mna_.rhs_at(t0);
      for (std::size_t i = 0; i < n; ++i) {
        rhs[i] = b1[i] + b0[i] + 2.0 * cx[i] / dt - gx[i];
      }
    }
    x = solver->solve(rhs);
    if (be_remaining > 0) --be_remaining;
    rec_t.push_back(t1);
    rec_v.push_back(x[out]);
  }
  return waveform::Waveform(std::move(rec_t), std::move(rec_v));
}

waveform::Waveform TransientSimulator::run_adaptive(
    const Probe& probe, double t_stop,
    const AdaptiveOptions& options) const {
  TransientOptions opt = options.base;
  if (opt.timestep <= 0.0) opt.timestep = t_stop / 512.0;

  waveform::Waveform prev = run(probe, t_stop, opt);
  for (int r = 0; r < options.max_refinements; ++r) {
    opt.timestep *= 0.5;
    waveform::Waveform next = run(probe, t_stop, opt);
    double max_diff = 0.0;
    for (std::size_t i = 0; i < prev.size(); ++i) {
      max_diff = std::max(max_diff,
                          std::abs(prev.values()[i] -
                                   next.value_at(prev.times()[i])));
    }
    const double range =
        std::max(1e-300, next.max_value() - next.min_value());
    prev = std::move(next);
    if (max_diff <= options.tolerance * range) break;
  }
  return prev;
}

}  // namespace awesim::sim
