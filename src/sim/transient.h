// Reference transient simulator — the repository's stand-in for the SPICE
// runs the paper compares AWE against.
//
// Integrates  G x + C x' = b(t)  with the trapezoidal rule (SPICE's default
// companion model) or backward Euler, from the same initial state the AWE
// engine uses, so AWE-vs-"exact" comparisons are apples to apples.  A fixed
// timestep keeps the LU factorization of (G + 2C/h) reusable across all
// steps; the adaptive driver re-runs with a halved step until the observed
// waveform converges, which at these (linear-circuit) problem sizes is both
// simple and robust.
#pragma once

#include <string>
#include <vector>

#include "circuit/circuit.h"
#include "mna/system.h"
#include "waveform/waveform.h"

namespace awesim::sim {

enum class Method {
  Trapezoidal,
  BackwardEuler,
};

struct TransientOptions {
  Method method = Method::Trapezoidal;

  /// Fixed integration step.  If <= 0, chosen as t_stop / 2000.
  double timestep = 0.0;

  /// Number of backward-Euler startup steps (damps the trapezoidal rule's
  /// response to the t=0 stimulus discontinuity, like SPICE's TR-BDF kick).
  int be_startup_steps = 2;
};

struct AdaptiveOptions {
  TransientOptions base;

  /// Refinement stops when the max pointwise change between successive
  /// halvings is below tol * (waveform range).
  double tolerance = 1e-5;
  int max_refinements = 12;
};

/// One observable: a node voltage (versus ground) by node id.
struct Probe {
  circuit::NodeId node = circuit::kGround;
};

class TransientSimulator {
 public:
  explicit TransientSimulator(const circuit::Circuit& ckt,
                              mna::Options mna_options = {});

  /// Simulate [0, t_stop] and record the probe.  Returns the sampled
  /// waveform including the t=0 initial point.
  waveform::Waveform run(const Probe& probe, double t_stop,
                         const TransientOptions& options = {}) const;

  /// Run with successive step halving until converged; the tight-tolerance
  /// reference used wherever the paper shows a SPICE curve.
  waveform::Waveform run_adaptive(const Probe& probe, double t_stop,
                                  const AdaptiveOptions& options = {}) const;

  const mna::MnaSystem& system() const { return mna_; }

 private:
  mna::MnaSystem mna_;
};

}  // namespace awesim::sim
