// Time-domain stimulus descriptions for independent sources.
//
// AWE (Section 3.1 of the paper) handles any excitation of the form
// u(t) = u0 + u1*t per segment; an arbitrary piecewise-linear stimulus is a
// superposition of such step/ramp segments (Section 4.3, Fig. 13).  Every
// stimulus here is therefore canonicalized to a breakpoint list
// { (t_k, value_jump_k, slope_change_k) } that both the AWE engine
// (superposition of atoms) and the transient simulator (direct evaluation)
// consume.
#pragma once

#include <stdexcept>
#include <vector>

namespace awesim::circuit {

/// One piecewise-linear breakpoint: at time `time`, the source value jumps
/// by `value_jump` and its slope changes by `slope_change`.
struct StimulusSegment {
  double time = 0.0;
  double value_jump = 0.0;
  double slope_change = 0.0;
};

/// Stimulus of one independent source.  Value prior to the first breakpoint
/// is `initial_value` (the t <= 0 level, also used for the DC operating
/// point that initial conditions are measured against).
class Stimulus {
 public:
  /// Constant source (DC).
  static Stimulus dc(double value);

  /// Ideal step from v0 to v1 at t = delay.
  static Stimulus step(double v0, double v1, double delay = 0.0);

  /// Step with finite rise time: v0 until `delay`, linear to v1 over
  /// `rise_time`, then flat (the paper's two-ramp superposition, Fig. 13).
  static Stimulus ramp_step(double v0, double v1, double rise_time,
                            double delay = 0.0);

  /// General piecewise-linear waveform through the given (time, value)
  /// points; constant before the first and after the last point.
  /// Points must have strictly increasing times.
  static Stimulus pwl(const std::vector<std::pair<double, double>>& points);

  double initial_value() const { return initial_value_; }
  const std::vector<StimulusSegment>& segments() const { return segments_; }

  /// Source value at time t.
  double value(double t) const;

  /// Source slope just after time t (d/dt of the PWL description).
  double slope_after(double t) const;

  /// Final (t -> infinity) value; only finite if the net slope is zero.
  double final_value() const;

  /// True if any segment leaves a nonzero net slope at the end.
  bool has_unbounded_ramp() const;

  /// Time of the last breakpoint (0 for DC).
  double last_breakpoint() const;

 private:
  double initial_value_ = 0.0;
  std::vector<StimulusSegment> segments_;
};

}  // namespace awesim::circuit
