// The lumped, linear, time-invariant circuit model that AWE analyzes
// (Section III of the paper): resistors, capacitors (grounded or floating),
// inductors, independent V/I sources with step/ramp/PWL stimuli, the four
// linear controlled sources, and nonequilibrium initial conditions.
#pragma once

#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "circuit/waveform_spec.h"

namespace awesim::circuit {

/// Node index.  Ground is always node 0 and is named "0" (or "gnd").
using NodeId = int;
inline constexpr NodeId kGround = 0;

enum class ElementKind {
  Resistor,
  Capacitor,
  Inductor,
  VoltageSource,
  CurrentSource,
  Vcvs,  // E: voltage-controlled voltage source
  Vccs,  // G: voltage-controlled current source
  Cccs,  // F: current-controlled current source
  Ccvs,  // H: current-controlled voltage source
};

/// Where an element came from in netlist source text (1-based; line 0
/// means "not netlist-derived" -- programmatically built circuits carry
/// no locations).  The parser attaches one per element so downstream
/// diagnostics (the src/check lint rules in particular) can point at the
/// offending card as file:line:column.
struct SourceLoc {
  std::string file;
  std::size_t line = 0;
  std::size_t column = 0;

  bool known() const { return line > 0; }
};

/// One circuit element.  Two-terminal elements use (pos, neg); controlled
/// sources additionally reference a controlling node pair (VCVS/VCCS) or a
/// controlling voltage-source element (CCCS/CCVS).
struct Element {
  ElementKind kind{};
  std::string name;
  NodeId pos = kGround;
  NodeId neg = kGround;

  /// R in ohms, C in farads, L in henries, or controlled-source gain.
  double value = 0.0;

  /// Stimulus for independent sources; unused otherwise.
  Stimulus stimulus;

  /// Controlling node pair for VCVS/VCCS.
  NodeId ctrl_pos = kGround;
  NodeId ctrl_neg = kGround;

  /// Name of the controlling voltage source for CCCS/CCVS.
  std::string ctrl_source;

  /// Initial condition: capacitor branch voltage v(pos)-v(neg) or inductor
  /// current (pos -> neg), at t = 0-.
  std::optional<double> initial_condition;

  /// Netlist source location of the card that created this element
  /// (line 0 when built programmatically).
  SourceLoc loc;
};

/// A multiport boundary-block macromodel, produced by hierarchical
/// reduction (src/reduce): the moment-matched equivalent of a collapsed
/// RC subtree, expressed as dense conductance/capacitance stamps over
/// its boundary ports plus `states` reduced internal unknowns.  Stamped
/// directly into the MNA matrices (mna/system.cpp) -- the entries of a
/// congruence-projected block are signed and coupled, so a macro cannot
/// be (and is not) represented as individual R/C elements.
struct MacroElement {
  std::string name;
  /// Boundary nodes, in stamp order.  Ports may repeat ground; ground
  /// rows/columns are dropped at stamp time like any other element.
  std::vector<NodeId> ports;
  /// Number of reduced internal unknowns appended after the ports.
  std::size_t states = 0;
  /// Row-major (ports.size()+states)^2 symmetric stamps: entry (i,j)
  /// adds to G/C between unknown i and unknown j of this macro.
  std::vector<double> g;
  std::vector<double> c;
  /// Series-resistance / total-capacitance sums of the collapsed
  /// elements, so the analytic Elmore bound of a reduced stage equals
  /// the flat stage's bound arithmetic exactly.
  double sum_resistance = 0.0;
  double sum_capacitance = 0.0;

  std::size_t dim() const { return ports.size() + states; }
};

/// A netlist-level circuit: a node name table plus an element list.
///
/// Build programmatically:
///   Circuit c;
///   auto in  = c.node("in");
///   auto out = c.node("out");
///   c.add_vsource("Vin", in, circuit::kGround, Stimulus::step(0, 5));
///   c.add_resistor("R1", in, out, 1e3);
///   c.add_capacitor("C1", out, circuit::kGround, 1e-12);
/// or parse from a SPICE-like netlist (see netlist/parser.h).
class Circuit {
 public:
  Circuit();

  /// Get-or-create a node by name.  "0", "gnd", and "GND" map to ground.
  NodeId node(std::string_view name);

  /// Look up an existing node; throws std::out_of_range if absent.
  NodeId find_node(std::string_view name) const;

  /// Name of a node id.
  const std::string& node_name(NodeId id) const;

  /// Number of nodes including ground.
  std::size_t node_count() const { return node_names_.size(); }

  const std::vector<Element>& elements() const { return elements_; }

  /// Boundary-block macromodels (usually none; see MacroElement).
  const std::vector<MacroElement>& macros() const { return macros_; }

  /// Add a reduction macromodel.  Throws std::invalid_argument when the
  /// stamp dimensions disagree with ports/states, a port id is out of
  /// range, or any stamp entry is non-finite.
  MacroElement& add_macro(MacroElement macro);

  Element& add_resistor(std::string name, NodeId pos, NodeId neg,
                        double ohms);
  Element& add_capacitor(std::string name, NodeId pos, NodeId neg,
                         double farads,
                         std::optional<double> initial_voltage = {});
  Element& add_inductor(std::string name, NodeId pos, NodeId neg,
                        double henries,
                        std::optional<double> initial_current = {});
  Element& add_vsource(std::string name, NodeId pos, NodeId neg,
                       Stimulus stimulus);
  Element& add_isource(std::string name, NodeId pos, NodeId neg,
                       Stimulus stimulus);
  Element& add_vcvs(std::string name, NodeId pos, NodeId neg, NodeId cpos,
                    NodeId cneg, double gain);
  Element& add_vccs(std::string name, NodeId pos, NodeId neg, NodeId cpos,
                    NodeId cneg, double transconductance);
  Element& add_cccs(std::string name, NodeId pos, NodeId neg,
                    std::string ctrl_vsource, double gain);
  Element& add_ccvs(std::string name, NodeId pos, NodeId neg,
                    std::string ctrl_vsource, double transresistance);

  /// Set the initial voltage of a node (the SPICE .ic card).  Node initial
  /// voltages and element initial conditions may both be given; element
  /// conditions take precedence for their branch.
  void set_initial_node_voltage(NodeId node, double volts);

  const std::map<NodeId, double>& initial_node_voltages() const {
    return initial_node_voltages_;
  }

  /// Find an element by (case-sensitive) name; nullptr if absent.
  const Element* find_element(std::string_view name) const;

  /// Throws std::invalid_argument describing the first structural problem:
  /// duplicate element names, non-positive R/C/L values, dangling
  /// controlled-source references, or a CCCS/CCVS controlling element that
  /// is not a voltage source.
  void validate() const;

 private:
  Element& add(Element e);

  std::vector<std::string> node_names_;
  std::map<std::string, NodeId, std::less<>> node_ids_;
  std::vector<Element> elements_;
  std::vector<MacroElement> macros_;
  std::map<NodeId, double> initial_node_voltages_;
};

}  // namespace awesim::circuit
