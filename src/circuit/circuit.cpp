#include "circuit/circuit.h"

#include <cmath>
#include <set>

namespace awesim::circuit {

Circuit::Circuit() {
  node_names_.push_back("0");
  node_ids_.emplace("0", kGround);
}

NodeId Circuit::node(std::string_view name) {
  if (name == "0" || name == "gnd" || name == "GND") return kGround;
  auto it = node_ids_.find(name);
  if (it != node_ids_.end()) return it->second;
  const NodeId id = static_cast<NodeId>(node_names_.size());
  node_names_.emplace_back(name);
  node_ids_.emplace(std::string(name), id);
  return id;
}

NodeId Circuit::find_node(std::string_view name) const {
  if (name == "0" || name == "gnd" || name == "GND") return kGround;
  auto it = node_ids_.find(name);
  if (it == node_ids_.end()) {
    throw std::out_of_range("Circuit: unknown node '" + std::string(name) +
                            "'");
  }
  return it->second;
}

const std::string& Circuit::node_name(NodeId id) const {
  return node_names_.at(static_cast<std::size_t>(id));
}

Element& Circuit::add(Element e) {
  elements_.push_back(std::move(e));
  return elements_.back();
}

Element& Circuit::add_resistor(std::string name, NodeId pos, NodeId neg,
                               double ohms) {
  return add({.kind = ElementKind::Resistor,
              .name = std::move(name),
              .pos = pos,
              .neg = neg,
              .value = ohms});
}

Element& Circuit::add_capacitor(std::string name, NodeId pos, NodeId neg,
                                double farads,
                                std::optional<double> initial_voltage) {
  Element e{.kind = ElementKind::Capacitor,
            .name = std::move(name),
            .pos = pos,
            .neg = neg,
            .value = farads};
  e.initial_condition = initial_voltage;
  return add(std::move(e));
}

Element& Circuit::add_inductor(std::string name, NodeId pos, NodeId neg,
                               double henries,
                               std::optional<double> initial_current) {
  Element e{.kind = ElementKind::Inductor,
            .name = std::move(name),
            .pos = pos,
            .neg = neg,
            .value = henries};
  e.initial_condition = initial_current;
  return add(std::move(e));
}

Element& Circuit::add_vsource(std::string name, NodeId pos, NodeId neg,
                              Stimulus stimulus) {
  Element e{.kind = ElementKind::VoltageSource,
            .name = std::move(name),
            .pos = pos,
            .neg = neg};
  e.stimulus = std::move(stimulus);
  return add(std::move(e));
}

Element& Circuit::add_isource(std::string name, NodeId pos, NodeId neg,
                              Stimulus stimulus) {
  Element e{.kind = ElementKind::CurrentSource,
            .name = std::move(name),
            .pos = pos,
            .neg = neg};
  e.stimulus = std::move(stimulus);
  return add(std::move(e));
}

Element& Circuit::add_vcvs(std::string name, NodeId pos, NodeId neg,
                           NodeId cpos, NodeId cneg, double gain) {
  return add({.kind = ElementKind::Vcvs,
              .name = std::move(name),
              .pos = pos,
              .neg = neg,
              .value = gain,
              .ctrl_pos = cpos,
              .ctrl_neg = cneg});
}

Element& Circuit::add_vccs(std::string name, NodeId pos, NodeId neg,
                           NodeId cpos, NodeId cneg,
                           double transconductance) {
  return add({.kind = ElementKind::Vccs,
              .name = std::move(name),
              .pos = pos,
              .neg = neg,
              .value = transconductance,
              .ctrl_pos = cpos,
              .ctrl_neg = cneg});
}

Element& Circuit::add_cccs(std::string name, NodeId pos, NodeId neg,
                           std::string ctrl_vsource, double gain) {
  Element e{.kind = ElementKind::Cccs,
            .name = std::move(name),
            .pos = pos,
            .neg = neg,
            .value = gain};
  e.ctrl_source = std::move(ctrl_vsource);
  return add(std::move(e));
}

Element& Circuit::add_ccvs(std::string name, NodeId pos, NodeId neg,
                           std::string ctrl_vsource,
                           double transresistance) {
  Element e{.kind = ElementKind::Ccvs,
            .name = std::move(name),
            .pos = pos,
            .neg = neg,
            .value = transresistance};
  e.ctrl_source = std::move(ctrl_vsource);
  return add(std::move(e));
}

MacroElement& Circuit::add_macro(MacroElement macro) {
  if (macro.name.empty()) {
    throw std::invalid_argument("Circuit: macro with empty name");
  }
  const std::size_t dim = macro.dim();
  if (macro.g.size() != dim * dim || macro.c.size() != dim * dim) {
    throw std::invalid_argument("Circuit: macro '" + macro.name +
                                "' stamp size disagrees with ports+states");
  }
  for (const NodeId port : macro.ports) {
    if (port < 0 || static_cast<std::size_t>(port) >= node_names_.size()) {
      throw std::invalid_argument("Circuit: macro '" + macro.name +
                                  "' references an unknown node id");
    }
  }
  for (const double v : macro.g) {
    if (!std::isfinite(v)) {
      throw std::invalid_argument("Circuit: macro '" + macro.name +
                                  "' has a non-finite G entry");
    }
  }
  for (const double v : macro.c) {
    if (!std::isfinite(v)) {
      throw std::invalid_argument("Circuit: macro '" + macro.name +
                                  "' has a non-finite C entry");
    }
  }
  macros_.push_back(std::move(macro));
  return macros_.back();
}

void Circuit::set_initial_node_voltage(NodeId node, double volts) {
  if (node == kGround) {
    throw std::invalid_argument("Circuit: cannot set IC on ground");
  }
  initial_node_voltages_[node] = volts;
}

const Element* Circuit::find_element(std::string_view name) const {
  for (const auto& e : elements_) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

void Circuit::validate() const {
  // Every registered node must touch at least one element; a dangling
  // node would make the MNA matrix structurally singular with a far less
  // helpful error.
  std::set<NodeId> touched;
  touched.insert(kGround);
  for (const auto& e : elements_) {
    touched.insert(e.pos);
    touched.insert(e.neg);
  }
  for (const auto& m : macros_) {
    for (const NodeId port : m.ports) touched.insert(port);
  }
  for (std::size_t id = 1; id < node_names_.size(); ++id) {
    if (touched.count(static_cast<NodeId>(id)) == 0) {
      throw std::invalid_argument("Circuit: node '" + node_names_[id] +
                                  "' is not connected to any element");
    }
  }

  std::set<std::string_view> names;
  for (const auto& e : elements_) {
    if (e.name.empty()) {
      throw std::invalid_argument("Circuit: element with empty name");
    }
    if (!names.insert(e.name).second) {
      throw std::invalid_argument("Circuit: duplicate element name '" +
                                  e.name + "'");
    }
    switch (e.kind) {
      case ElementKind::Resistor:
      case ElementKind::Capacitor:
      case ElementKind::Inductor:
        if (!(e.value > 0.0)) {
          throw std::invalid_argument("Circuit: element '" + e.name +
                                      "' must have a positive value");
        }
        break;
      case ElementKind::Cccs:
      case ElementKind::Ccvs: {
        const Element* ctrl = find_element(e.ctrl_source);
        if (ctrl == nullptr) {
          throw std::invalid_argument("Circuit: '" + e.name +
                                      "' references unknown control source '" +
                                      e.ctrl_source + "'");
        }
        if (ctrl->kind != ElementKind::VoltageSource &&
            ctrl->kind != ElementKind::Inductor) {
          throw std::invalid_argument(
              "Circuit: '" + e.name +
              "' control element must be a voltage source or inductor");
        }
        break;
      }
      default:
        break;
    }
    if (e.pos == e.neg) {
      throw std::invalid_argument("Circuit: element '" + e.name +
                                  "' shorts a node to itself");
    }
  }
}

}  // namespace awesim::circuit
