#include "circuit/waveform_spec.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace awesim::circuit {

Stimulus Stimulus::dc(double value) {
  Stimulus s;
  s.initial_value_ = value;
  return s;
}

Stimulus Stimulus::step(double v0, double v1, double delay) {
  Stimulus s;
  s.initial_value_ = v0;
  s.segments_.push_back({delay, v1 - v0, 0.0});
  return s;
}

Stimulus Stimulus::ramp_step(double v0, double v1, double rise_time,
                             double delay) {
  if (rise_time <= 0.0) return step(v0, v1, delay);
  Stimulus s;
  s.initial_value_ = v0;
  const double slope = (v1 - v0) / rise_time;
  s.segments_.push_back({delay, 0.0, slope});
  s.segments_.push_back({delay + rise_time, 0.0, -slope});
  return s;
}

Stimulus Stimulus::pwl(const std::vector<std::pair<double, double>>& points) {
  if (points.empty()) {
    throw std::invalid_argument("Stimulus::pwl: no points");
  }
  for (std::size_t i = 1; i < points.size(); ++i) {
    if (points[i].first <= points[i - 1].first) {
      throw std::invalid_argument("Stimulus::pwl: times must increase");
    }
  }
  Stimulus s;
  s.initial_value_ = points.front().second;
  double prev_slope = 0.0;
  for (std::size_t i = 0; i + 1 < points.size(); ++i) {
    const double slope = (points[i + 1].second - points[i].second) /
                         (points[i + 1].first - points[i].first);
    s.segments_.push_back({points[i].first, 0.0, slope - prev_slope});
    prev_slope = slope;
  }
  // Flatten after the last point.
  s.segments_.push_back({points.back().first, 0.0, -prev_slope});
  // Drop no-op segments (e.g. zero-slope intervals).
  std::erase_if(s.segments_, [](const StimulusSegment& seg) {
    return seg.value_jump == 0.0 && seg.slope_change == 0.0;
  });
  return s;
}

double Stimulus::value(double t) const {
  double v = initial_value_;
  for (const auto& seg : segments_) {
    if (t < seg.time) break;
    v += seg.value_jump + seg.slope_change * (t - seg.time);
  }
  return v;
}

double Stimulus::slope_after(double t) const {
  double slope = 0.0;
  for (const auto& seg : segments_) {
    if (t < seg.time) break;
    slope += seg.slope_change;
  }
  return slope;
}

double Stimulus::final_value() const {
  if (has_unbounded_ramp()) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  return value(last_breakpoint());
}

bool Stimulus::has_unbounded_ramp() const {
  double slope = 0.0;
  for (const auto& seg : segments_) slope += seg.slope_change;
  return slope != 0.0;
}

double Stimulus::last_breakpoint() const {
  return segments_.empty() ? 0.0 : segments_.back().time;
}

}  // namespace awesim::circuit
