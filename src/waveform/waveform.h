// Sampled waveform type and the delay/error metrics used throughout the
// paper's evaluation: 50 % delay (Fig. 2), logic-threshold crossing times
// (Section 5.3), overshoot (Fig. 26), and the normalized L2 waveform error
// that Section 3.4 defines as the accuracy measure.
#pragma once

#include <functional>
#include <optional>
#include <vector>

namespace awesim::waveform {

/// A waveform sampled at strictly increasing times, linearly interpolated
/// between samples.
class Waveform {
 public:
  Waveform() = default;

  /// Construct from parallel time/value arrays (equal length, times
  /// strictly increasing).  Throws std::invalid_argument otherwise.
  Waveform(std::vector<double> times, std::vector<double> values);

  /// Sample a callable on [t0, t1] with `count` uniformly spaced points
  /// (count >= 2).
  static Waveform sample(const std::function<double(double)>& fn, double t0,
                         double t1, std::size_t count);

  const std::vector<double>& times() const { return times_; }
  const std::vector<double>& values() const { return values_; }
  std::size_t size() const { return times_.size(); }
  bool empty() const { return times_.empty(); }

  double front_time() const { return times_.front(); }
  double back_time() const { return times_.back(); }

  /// Linear interpolation; clamps outside the sampled range.
  double value_at(double t) const;

  /// First time the waveform crosses `level` (in either direction), or
  /// nullopt if it never does.  Linear interpolation within segments.
  std::optional<double> first_crossing(double level) const;

  /// Last crossing of `level`, or nullopt.
  std::optional<double> last_crossing(double level) const;

  /// 50 % delay: first crossing of v0 + 0.5*(v_final - v0), where v0 is
  /// the first sample and v_final the last.  The paper's Fig. 2 metric.
  std::optional<double> delay_50() const;

  /// Largest value over the record (for overshoot checks).
  double max_value() const;
  double min_value() const;

  /// Trapezoidal integral of the waveform over its record.
  double integral() const;

  /// Trapezoidal integral of (this - other)^2 over this waveform's time
  /// points (other is interpolated).
  double l2_difference_sq(const Waveform& other) const;

  /// Normalized L2 error vs a reference, the paper's eq. (35)/(37):
  /// sqrt(int (ref - this)^2 dt / int ref_transient^2 dt), where the
  /// transient of the reference is measured about its final value so a
  /// step response's error is relative to the moving part of the waveform.
  double relative_error_vs(const Waveform& reference) const;

 private:
  std::vector<double> times_;
  std::vector<double> values_;
};

}  // namespace awesim::waveform
