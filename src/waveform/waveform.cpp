#include "waveform/waveform.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace awesim::waveform {

Waveform::Waveform(std::vector<double> times, std::vector<double> values)
    : times_(std::move(times)), values_(std::move(values)) {
  if (times_.size() != values_.size()) {
    throw std::invalid_argument("Waveform: times/values size mismatch");
  }
  for (std::size_t i = 1; i < times_.size(); ++i) {
    if (times_[i] <= times_[i - 1]) {
      throw std::invalid_argument("Waveform: times must strictly increase");
    }
  }
}

Waveform Waveform::sample(const std::function<double(double)>& fn, double t0,
                          double t1, std::size_t count) {
  if (count < 2 || t1 <= t0) {
    throw std::invalid_argument("Waveform::sample: bad range or count");
  }
  std::vector<double> ts(count);
  std::vector<double> vs(count);
  for (std::size_t i = 0; i < count; ++i) {
    const double t =
        t0 + (t1 - t0) * static_cast<double>(i) /
                 static_cast<double>(count - 1);
    ts[i] = t;
    vs[i] = fn(t);
  }
  return Waveform(std::move(ts), std::move(vs));
}

double Waveform::value_at(double t) const {
  if (empty()) throw std::logic_error("Waveform: empty");
  if (t <= times_.front()) return values_.front();
  if (t >= times_.back()) return values_.back();
  const auto it = std::upper_bound(times_.begin(), times_.end(), t);
  const std::size_t hi = static_cast<std::size_t>(it - times_.begin());
  const std::size_t lo = hi - 1;
  const double f = (t - times_[lo]) / (times_[hi] - times_[lo]);
  return values_[lo] + f * (values_[hi] - values_[lo]);
}

std::optional<double> Waveform::first_crossing(double level) const {
  for (std::size_t i = 1; i < size(); ++i) {
    const double a = values_[i - 1] - level;
    const double b = values_[i] - level;
    if (a == 0.0) return times_[i - 1];
    if ((a < 0.0 && b >= 0.0) || (a > 0.0 && b <= 0.0)) {
      const double f = a / (a - b);
      return times_[i - 1] + f * (times_[i] - times_[i - 1]);
    }
  }
  return std::nullopt;
}

std::optional<double> Waveform::last_crossing(double level) const {
  std::optional<double> found;
  for (std::size_t i = 1; i < size(); ++i) {
    const double a = values_[i - 1] - level;
    const double b = values_[i] - level;
    if (a == 0.0) found = times_[i - 1];
    if ((a < 0.0 && b >= 0.0) || (a > 0.0 && b <= 0.0)) {
      const double f = a / (a - b);
      found = times_[i - 1] + f * (times_[i] - times_[i - 1]);
    }
  }
  return found;
}

std::optional<double> Waveform::delay_50() const {
  if (size() < 2) return std::nullopt;
  const double level = values_.front() + 0.5 * (values_.back() - values_.front());
  return first_crossing(level);
}

double Waveform::max_value() const {
  return *std::max_element(values_.begin(), values_.end());
}

double Waveform::min_value() const {
  return *std::min_element(values_.begin(), values_.end());
}

double Waveform::integral() const {
  double acc = 0.0;
  for (std::size_t i = 1; i < size(); ++i) {
    acc += 0.5 * (values_[i] + values_[i - 1]) * (times_[i] - times_[i - 1]);
  }
  return acc;
}

double Waveform::l2_difference_sq(const Waveform& other) const {
  double acc = 0.0;
  for (std::size_t i = 1; i < size(); ++i) {
    const double d0 = values_[i - 1] - other.value_at(times_[i - 1]);
    const double d1 = values_[i] - other.value_at(times_[i]);
    acc += 0.5 * (d0 * d0 + d1 * d1) * (times_[i] - times_[i - 1]);
  }
  return acc;
}

double Waveform::relative_error_vs(const Waveform& reference) const {
  // Numerator: integral of squared difference on the reference grid.
  const double num = reference.l2_difference_sq(*this);
  // Denominator: squared norm of the reference transient about its final
  // value (the "moving part"; a raw step response about zero would make
  // errors look vanishingly small at long horizons).
  const double vf = reference.values().back();
  double den = 0.0;
  const auto& ts = reference.times();
  const auto& vs = reference.values();
  for (std::size_t i = 1; i < reference.size(); ++i) {
    const double d0 = vs[i - 1] - vf;
    const double d1 = vs[i] - vf;
    den += 0.5 * (d0 * d0 + d1 * d1) * (ts[i] - ts[i - 1]);
  }
  if (den <= 0.0) return num > 0.0 ? std::numeric_limits<double>::infinity()
                                   : 0.0;
  return std::sqrt(num / den);
}

}  // namespace awesim::waveform
