// PCB-level net with inductance (the paper's Section I motivation for
// going beyond RC trees): a driver, a connector stub, and a 4-segment
// trace modeled as RLC sections.
//
// The example sweeps the driver rise time and reports, from AWE models:
//   * overshoot (ringing) at the receiver,
//   * 50% delay and settling behaviour,
//   * what a wrong model costs: the same trace with inductors removed
//     (RC-only, what an RC-tree method would use) misses the ringing
//     entirely.
#include <cmath>
#include <cstdio>

#include "circuit/circuit.h"
#include "core/engine.h"

using namespace awesim;

namespace {

circuit::Circuit pcb_net(double rise_time, bool with_inductance) {
  circuit::Circuit ckt;
  const auto in = ckt.node("in");
  ckt.add_vsource("Vdrv", in, circuit::kGround,
                  circuit::Stimulus::ramp_step(0.0, 3.3, rise_time));
  const auto drv = ckt.node("drv");
  ckt.add_resistor("Rdrv", in, drv, 25.0);
  // 4 trace segments: 2 nH / 0.9 pF / 0.4 Ohm each.
  auto prev = drv;
  for (int k = 1; k <= 4; ++k) {
    const auto nk = ckt.node("t" + std::to_string(k));
    if (with_inductance) {
      const auto mid = ckt.node("m" + std::to_string(k));
      ckt.add_inductor("L" + std::to_string(k), prev, mid, 2e-9);
      ckt.add_resistor("Rs" + std::to_string(k), mid, nk, 0.4);
    } else {
      ckt.add_resistor("Rs" + std::to_string(k), prev, nk, 0.4);
    }
    ckt.add_capacitor("C" + std::to_string(k), nk, circuit::kGround,
                      0.9e-12);
    prev = nk;
  }
  // Receiver load.
  ckt.add_capacitor("Crx", prev, circuit::kGround, 2e-12);
  return ckt;
}

struct Numbers {
  double overshoot_pct;
  double d50;
  int order_used;
  double error_estimate;
};

Numbers analyze(circuit::Circuit& ckt) {
  core::Engine engine(ckt);
  core::EngineOptions opt;
  opt.order = 2;
  opt.auto_order = true;  // let AWE pick the order the waveform needs
  opt.error_tolerance = 0.01;
  opt.max_order = 8;
  const auto r = engine.approximate(ckt.find_node("t4"), opt);
  const double horizon = 30e-9;
  double peak = 0.0;
  for (int i = 0; i <= 6000; ++i) {
    peak = std::max(peak, r.approximation.value(horizon * i / 6000.0));
  }
  Numbers n;
  n.overshoot_pct = 100.0 * (peak - 3.3) / 3.3;
  n.d50 =
      r.approximation.first_crossing(1.65, 0.0, horizon).value_or(-1.0);
  n.order_used = r.order_used;
  n.error_estimate = r.error_estimate;
  return n;
}

}  // namespace

int main() {
  std::printf("PCB trace timing: rise-time sweep at the receiver (t4)\n\n");
  std::printf("%12s | %22s | %22s\n", "", "RLC model (AWE)",
              "RC-only model (AWE)");
  std::printf("%12s | %9s %6s %5s | %9s %6s %5s\n", "rise time",
              "overshoot", "d50", "q", "overshoot", "d50", "q");
  for (const double rise : {0.1e-9, 0.3e-9, 1e-9, 3e-9}) {
    auto rlc = pcb_net(rise, true);
    auto rc = pcb_net(rise, false);
    const auto a = analyze(rlc);
    const auto b = analyze(rc);
    std::printf("%10.1e s | %8.1f%% %6.2f %5d | %8.1f%% %6.2f %5d\n", rise,
                a.overshoot_pct, a.d50 * 1e9, a.order_used,
                b.overshoot_pct, b.d50 * 1e9, b.order_used);
  }
  std::printf(
      "\n(d50 in ns.)  With fast edges the RLC model rings: double-digit\n"
      "overshoot that the RC-only model cannot produce, and AWE escalates\n"
      "its order to capture the complex poles -- exactly why the paper\n"
      "argues PCB and bipolar nets need more than RC trees.\n");
  return 0;
}
