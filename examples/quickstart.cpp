// Quickstart: build an RC interconnect stage programmatically, run AWE,
// and extract delay numbers.
//
//   $ ./quickstart
//
// Shows the three-line "hello world" of the library:
//   1. describe the circuit (or parse a netlist, see the other examples);
//   2. create an Engine and ask for an approximation at the output;
//   3. evaluate the returned closed-form waveform wherever you like.
#include <cstdio>

#include "circuit/circuit.h"
#include "core/engine.h"

using namespace awesim;

int main() {
  // A 3-segment wire driven through a 1 kOhm driver: 5 V step input.
  circuit::Circuit ckt;
  const auto in = ckt.node("in");
  const auto a = ckt.node("a");
  const auto b = ckt.node("b");
  const auto out = ckt.node("out");
  ckt.add_vsource("Vdrv", in, circuit::kGround,
                  circuit::Stimulus::step(0.0, 5.0));
  ckt.add_resistor("Rdrv", in, a, 1e3);
  ckt.add_capacitor("Ca", a, circuit::kGround, 20e-15);
  ckt.add_resistor("Rw1", a, b, 400.0);
  ckt.add_capacitor("Cb", b, circuit::kGround, 35e-15);
  ckt.add_resistor("Rw2", b, out, 400.0);
  ckt.add_capacitor("Cout", out, circuit::kGround, 50e-15);

  core::Engine engine(ckt);

  // Classic Elmore number first (the first moment of the response).
  const double elmore = engine.elmore_delay(out);
  std::printf("Elmore delay at out: %.4g s\n", elmore);

  // Second-order AWE with the built-in accuracy estimate.
  core::EngineOptions opt;
  opt.order = 2;
  const auto result = engine.approximate(out, opt);
  std::printf("AWE order used: %d, stable: %s, error estimate: %.3g\n",
              result.order_used, result.stable ? "yes" : "no",
              result.error_estimate);

  // The approximation is a closed-form waveform: sample it, cross it.
  const double horizon = 10.0 * elmore;
  const auto t50 = result.approximation.first_crossing(2.5, 0.0, horizon);
  const auto t90 = result.approximation.first_crossing(4.5, 0.0, horizon);
  if (t50 && t90) {
    std::printf("50%% delay: %.4g s   90%% delay: %.4g s\n", *t50, *t90);
  }
  std::printf("\n%12s %12s\n", "t (s)", "v(out) (V)");
  for (int i = 0; i <= 10; ++i) {
    const double t = horizon * i / 10.0;
    std::printf("%12.4e %12.6f\n", t, result.approximation.value(t));
  }

  // Want more accuracy?  Ask for automatic order escalation.
  core::EngineOptions auto_opt;
  auto_opt.order = 1;
  auto_opt.auto_order = true;
  auto_opt.error_tolerance = 1e-3;
  const auto refined = engine.approximate(out, auto_opt);
  std::printf("\nauto-order picked q=%d (error estimate %.2g)\n",
              refined.order_used, refined.error_estimate);
  return 0;
}
