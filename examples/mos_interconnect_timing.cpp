// MOS interconnect timing: the paper's motivating application (Section
// II).  A gate output drives a multi-sink RC net described as a SPICE-like
// netlist; we produce per-sink delay estimates three ways --
//
//   1. the classic Elmore / single-pole model (the RC-tree baseline),
//   2. AWE at orders 1..3 with its own accuracy estimate,
//   3. the reference transient simulator (ground truth),
//
// and print a timing report with 50% delays and logic-threshold (4.0 V)
// crossings at each sink.
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "core/engine.h"
#include "netlist/parser.h"
#include "rctree/rctree.h"
#include "sim/transient.h"

using namespace awesim;

namespace {

const char* kNet = R"(
* Driver + branching interconnect with three sinks (sinkA/B/C).
Vdrv drv 0 STEP(0 5 0 0.2n)
Rdrv drv  n1   900
C1   n1   0    30f
Rw1  n1   n2   250
C2   n2   0    40f
Rw2  n2   sinkA 350
CA   sinkA 0   60f
Rw3  n2   n3   200
C3   n3   0    25f
Rw4  n3   sinkB 500
CB   sinkB 0   45f
Rw5  n3   sinkC 650
CC   sinkC 0   80f
.end
)";

struct Row {
  std::string sink;
  double elmore;
  double d50_single_pole;
  double d50_awe[4];  // index by order 1..3
  double est_awe[4];
  double d50_sim;
  double dth_awe3;
  double dth_sim;
};

}  // namespace

int main() {
  netlist::ParseResult parsed = netlist::parse_collect(kNet);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", core::to_string(parsed.diagnostics).c_str());
    return 1;
  }
  auto ckt = std::move(*parsed.circuit);
  core::Engine engine(ckt);
  sim::TransientSimulator sim(ckt);

  std::printf("MOS interconnect stage timing report\n");
  std::printf("input: 5 V swing, 0.2 ns rise; logic threshold 4.0 V\n\n");

  std::vector<Row> rows;
  for (const std::string sink : {"sinkA", "sinkB", "sinkC"}) {
    Row row;
    row.sink = sink;
    const auto node = ckt.find_node(sink);
    row.elmore = engine.elmore_delay(node);
    const double horizon = 12.0 * row.elmore;

    // Single-pole model: v = 5(1 - e^{-t/T_D}); 50% at T_D ln 2.
    row.d50_single_pole = row.elmore * std::log(2.0);

    for (int q = 1; q <= 3; ++q) {
      core::EngineOptions opt;
      opt.order = q;
      const auto r = engine.approximate(node, opt);
      row.d50_awe[q] =
          r.approximation.first_crossing(2.5, 0.0, horizon).value_or(-1);
      row.est_awe[q] = r.error_estimate;
      if (q == 3) {
        row.dth_awe3 =
            r.approximation.first_crossing(4.0, 0.0, horizon).value_or(-1);
      }
    }

    sim::AdaptiveOptions aopt;
    aopt.tolerance = 1e-7;
    const auto ref = sim.run_adaptive({node}, horizon, aopt);
    row.d50_sim = ref.first_crossing(2.5).value_or(-1);
    row.dth_sim = ref.first_crossing(4.0).value_or(-1);
    rows.push_back(row);
  }

  std::printf("%-7s %11s %11s %11s %11s %11s %11s\n", "sink", "elmore",
              "1-pole d50", "awe1 d50", "awe2 d50", "awe3 d50", "sim d50");
  for (const auto& r : rows) {
    std::printf("%-7s %11.3e %11.3e %11.3e %11.3e %11.3e %11.3e\n",
                r.sink.c_str(), r.elmore, r.d50_single_pole, r.d50_awe[1],
                r.d50_awe[2], r.d50_awe[3], r.d50_sim);
  }

  std::printf("\nlogic threshold (4.0 V) crossings:\n");
  std::printf("%-7s %13s %13s %13s\n", "sink", "awe q=3", "sim",
              "rel. error");
  for (const auto& r : rows) {
    std::printf("%-7s %13.4e %13.4e %12.2f%%\n", r.sink.c_str(),
                r.dth_awe3, r.dth_sim,
                100.0 * std::abs(r.dth_awe3 - r.dth_sim) / r.dth_sim);
  }

  std::printf("\nAWE accuracy self-estimates (eq. 39, q vs q+1):\n");
  std::printf("%-7s %11s %11s %11s\n", "sink", "q=1", "q=2", "q=3");
  for (const auto& r : rows) {
    std::printf("%-7s %11.2e %11.2e %11.2e\n", r.sink.c_str(),
                r.est_awe[1], r.est_awe[2], r.est_awe[3]);
  }
  return 0;
}
