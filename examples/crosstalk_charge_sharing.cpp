// Crosstalk / charge sharing (the paper's Section 5.3 scenario, turned
// into a little study): an aggressor net couples into a quiet victim net
// through a floating capacitor.  RC-tree methods cannot even represent
// this circuit; AWE handles it directly.
//
// The example sweeps the coupling capacitance and reports, from the AWE
// models alone (no transient simulation):
//   * the victim's peak noise voltage and its timing,
//   * the aggressor's 50% delay shift caused by the coupling,
//   * the exactness of the transferred charge (matched m_0).
#include <cmath>
#include <cstdio>

#include "circuit/circuit.h"
#include "core/engine.h"
#include "core/pade.h"

using namespace awesim;

namespace {

circuit::Circuit coupled_nets(double coupling_farads) {
  circuit::Circuit ckt;
  const auto in = ckt.node("in");
  const auto a1 = ckt.node("a1");
  const auto a2 = ckt.node("a2");  // aggressor output
  const auto v1 = ckt.node("v1");  // victim internal
  const auto v2 = ckt.node("v2");  // victim output (held by its driver)
  ckt.add_vsource("Vdrv", in, circuit::kGround,
                  circuit::Stimulus::ramp_step(0.0, 5.0, 0.3e-9));
  // Aggressor: driver + two wire segments.
  ckt.add_resistor("Rdrv", in, a1, 700.0);
  ckt.add_capacitor("Ca1", a1, circuit::kGround, 40e-15);
  ckt.add_resistor("Rw1", a1, a2, 300.0);
  ckt.add_capacitor("Ca2", a2, circuit::kGround, 70e-15);
  // Victim: quiet net held at 0 by its own driver resistance.
  ckt.add_resistor("Rvd", v2, circuit::kGround, 1.2e3);
  ckt.add_resistor("Rw2", v2, v1, 400.0);
  ckt.add_capacitor("Cv1", v1, circuit::kGround, 50e-15);
  ckt.add_capacitor("Cv2", v2, circuit::kGround, 60e-15);
  if (coupling_farads > 0.0) {
    ckt.add_capacitor("Cx", a2, v1, coupling_farads);
  }
  return ckt;
}

}  // namespace

int main() {
  std::printf("Crosstalk study: aggressor-victim coupling sweep\n");
  std::printf("(all numbers from AWE order-3 models; no simulation)\n\n");
  std::printf("%10s %12s %12s %14s %14s %14s\n", "Cx (F)", "victim pk(V)",
              "pk time (s)", "aggr d50 (s)", "d50 shift", "charge (V*s)");

  double baseline_d50 = 0.0;
  for (const double cx : {0.0, 10e-15, 30e-15, 60e-15, 120e-15}) {
    auto ckt = coupled_nets(cx);
    core::Engine engine(ckt);
    core::EngineOptions opt;
    opt.order = 3;

    // Aggressor delay.
    const auto aggr = engine.approximate(ckt.find_node("a2"), opt);
    const double horizon = 20e-9;
    const double d50 =
        aggr.approximation.first_crossing(2.5, 0.0, horizon).value_or(-1);
    if (cx == 0.0) baseline_d50 = d50;

    // Victim noise: scan the closed-form waveform for its peak.
    const auto victim = engine.approximate(ckt.find_node("v1"), opt);
    double peak = 0.0;
    double peak_t = 0.0;
    for (int i = 0; i <= 4000; ++i) {
      const double t = horizon * i / 4000.0;
      const double v = victim.approximation.value(t);
      if (std::abs(v) > std::abs(peak)) {
        peak = v;
        peak_t = t;
      }
    }
    // Transferred charge: the victim's voltage-time area, exact from the
    // matched m_0 moments (closed form, no sampling).
    const double area = victim.approximation.settling_area();

    std::printf("%10.1e %12.4f %12.3e %14.4e %13.2f%% %14.3e\n", cx, peak,
                peak_t, d50,
                baseline_d50 > 0 ? 100.0 * (d50 - baseline_d50) / baseline_d50
                                 : 0.0,
                area);
  }
  std::printf(
      "\nThe victim peak grows with coupling while its area tracks the\n"
      "injected charge; the aggressor slows down as it must also charge\n"
      "the coupling capacitor (the paper's delay shift, Fig. 23).\n");
  return 0;
}
