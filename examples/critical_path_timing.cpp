// Full-flow timing analysis: a small gate-level design (two pipeline-ish
// paths reconverging) with per-net parasitics, analyzed with the
// AWE-backed stage timing engine.  Prints the per-stage timing report,
// arrival times, and the critical path.
//
// With --json, emits the whole report as one machine-readable JSON
// document instead (report + AWE cost counters + phase-time breakdown;
// tracing is force-enabled so the breakdown is populated).
//
// Slack and path queries (the timing/graph.h + timing/paths.h layer):
//   --required=T     required arrival time in seconds at every endpoint
//                    (default: floats to the latest arrival, slack >= 0)
//   --paths=K        also report the K worst paths, worst first
//   --through=NAME   keep only paths visiting gate/port NAME (repeatable)
//   --model=NAME     delay kernel: awe (default), elmore, two_pole, table
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/trace.h"
#include "timing/analyzer.h"
#include "timing/graph.h"
#include "timing/paths.h"

using namespace awesim;
using timing::Design;
using timing::Gate;
using timing::Net;
using timing::NetElement;

namespace {

NetElement r(const std::string& a, const std::string& b, double v) {
  return {NetElement::Kind::Resistor, a, b, v};
}
NetElement c(const std::string& a, double v) {
  return {NetElement::Kind::Capacitor, a, "0", v};
}

obs::json::Value paths_json(const timing::PathsResult& result) {
  using obs::json::Value;
  Value doc = Value::object();
  doc.set("truncated", result.truncated);
  doc.set("expansions", static_cast<double>(result.expansions));
  Value paths = Value::array();
  for (const auto& p : result.paths) {
    Value v = Value::object();
    v.set("source", p.source);
    v.set("endpoint", p.endpoint);
    v.set("arrival", p.arrival);
    v.set("slack", p.slack);
    v.set("degraded", p.degraded);
    v.set("failed", p.failed);
    Value points = Value::array();
    for (const auto& pt : p.points) {
      Value q = Value::object();
      q.set("pin", pt.pin);
      q.set("arrival", pt.arrival);
      q.set("delay", pt.delay);
      if (!pt.net.empty()) q.set("net", pt.net);
      points.push_back(std::move(q));
    }
    v.set("points", std::move(points));
    paths.push_back(std::move(v));
  }
  doc.set("paths", std::move(paths));
  return doc;
}

obs::json::Value report_json(const timing::TimingReport& report,
                             const timing::AnalysisOptions& opt) {
  using obs::json::Value;
  Value doc = Value::object();
  doc.set("schema", "awesim-timing-report");
  doc.set("schema_version", 2);
  doc.set("delay_model", timing::to_string(opt.delay_model));
  doc.set("critical_delay", report.critical_delay);
  Value path = Value::array();
  for (const auto& g : report.critical_path) path.push_back(g);
  doc.set("critical_path", std::move(path));
  doc.set("levels", static_cast<double>(report.levels));
  doc.set("degraded_stages", static_cast<double>(report.degraded_stages));
  doc.set("failed_stages", static_cast<double>(report.failed_stages));
  doc.set("worst_slack", report.worst_slack);
  doc.set("worst_slack_endpoint", report.worst_slack_endpoint);

  Value arrivals = Value::object();
  for (const auto& [gate, t] : report.gate_arrival) arrivals.set(gate, t);
  doc.set("gate_arrival", std::move(arrivals));

  Value slacks = Value::object();
  for (const auto& [gate, s] : report.gate_slack) slacks.set(gate, s);
  doc.set("gate_slack", std::move(slacks));

  Value sources = Value::array();
  for (const auto& g : report.source_gates) sources.push_back(g);
  doc.set("source_gates", std::move(sources));

  Value stages = Value::array();
  for (const auto& st : report.stages) {
    Value s = Value::object();
    s.set("driver", st.driver_gate);
    s.set("net", st.net);
    s.set("input_arrival", st.input_arrival);
    s.set("awe_order_used", st.awe_order_used);
    s.set("degraded", st.degraded);
    s.set("failed", st.failed);
    Value sinks = Value::array();
    for (const auto& sk : st.sinks) {
      Value v = Value::object();
      v.set("gate", sk.gate);
      v.set("stage_delay", sk.stage_delay);
      v.set("slew", sk.slew);
      v.set("arrival", sk.arrival);
      sinks.push_back(std::move(v));
    }
    s.set("sinks", std::move(sinks));
    stages.push_back(std::move(s));
  }
  doc.set("stages", std::move(stages));

  const core::Stats& st = report.awe_stats;
  Value stats = Value::object();
  stats.set("factorizations", static_cast<double>(st.factorizations));
  stats.set("substitutions", static_cast<double>(st.substitutions));
  stats.set("matches", static_cast<double>(st.matches));
  stats.set("outputs", static_cast<double>(st.outputs));
  stats.set("stages", static_cast<double>(st.stages));
  stats.set("window_shifts", static_cast<double>(st.window_shifts));
  stats.set("order_stepdowns", static_cast<double>(st.order_stepdowns));
  stats.set("elmore_fallbacks", static_cast<double>(st.elmore_fallbacks));
  stats.set("degradations", static_cast<double>(st.degradations));
  stats.set("failures", static_cast<double>(st.failures));
  stats.set("seconds_setup", st.seconds_setup);
  stats.set("seconds_moments", st.seconds_moments);
  stats.set("seconds_match", st.seconds_match);
  doc.set("stats", std::move(stats));

  Value phases = Value::array();
  for (const auto& p : st.phases) {
    Value ph = Value::object();
    ph.set("name", p.name);
    ph.set("count", static_cast<double>(p.stats.count));
    ph.set("total_seconds", p.stats.total_seconds);
    ph.set("min_seconds", p.stats.min_seconds);
    ph.set("max_seconds", p.stats.max_seconds);
    phases.push_back(std::move(ph));
  }
  doc.set("phases", std::move(phases));
  doc.set("wall_seconds", report.wall_seconds);
  return doc;
}

}  // namespace

int main(int argc, char** argv) {
  bool emit_json = false;
  std::size_t k_paths = 0;
  timing::AnalysisOptions opt;
  timing::PathQuery query;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      emit_json = true;
    } else if (arg.rfind("--paths=", 0) == 0) {
      k_paths = static_cast<std::size_t>(
          std::strtoull(arg.c_str() + 8, nullptr, 10));
    } else if (arg.rfind("--required=", 0) == 0) {
      opt.required_time = std::strtod(arg.c_str() + 11, nullptr);
    } else if (arg.rfind("--through=", 0) == 0) {
      query.through.push_back(arg.substr(10));
    } else if (arg.rfind("--model=", 0) == 0) {
      const std::string name = arg.substr(8);
      if (name == "awe") {
        opt.delay_model = timing::DelayModelKind::Awe;
      } else if (name == "elmore") {
        opt.delay_model = timing::DelayModelKind::ElmoreBound;
      } else if (name == "two_pole") {
        opt.delay_model = timing::DelayModelKind::TwoPole;
      } else if (name == "table") {
        opt.delay_model = timing::DelayModelKind::TableLookup;
      } else {
        std::fprintf(stderr, "unknown --model '%s' (awe|elmore|two_pole|table)\n",
                     name.c_str());
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "usage: %s [--json] [--paths=K] [--required=T]"
                   " [--through=NAME]... [--model=NAME]\n",
                   argv[0]);
      return 2;
    }
  }
  if (emit_json) obs::set_tracing(true);

  Design d;
  // Gates: name, drive resistance, input cap, intrinsic delay.
  d.add_gate({"in_buf", 800.0, 3e-15, 15e-12});
  d.add_gate({"nand_a", 1.2e3, 5e-15, 22e-12});
  d.add_gate({"nand_b", 1.2e3, 5e-15, 22e-12});
  d.add_gate({"long_wire_buf", 600.0, 4e-15, 18e-12});
  d.add_gate({"out_or", 1.5e3, 6e-15, 30e-12});

  // in_buf fans out to both nands over a forked net.
  {
    Net net;
    net.name = "fanout2";
    net.parasitics = {r("DRV", "f", 150.0),  c("f", 12e-15),
                      r("f", "pa", 250.0),   c("pa", 18e-15),
                      r("f", "pb", 400.0),   c("pb", 25e-15)};
    net.sink_node["nand_a"] = "pa";
    net.sink_node["nand_b"] = "pb";
    d.add_net("in_buf", net);
  }
  // nand_a -> out_or over a short net.
  {
    Net net;
    net.name = "short";
    net.parasitics = {r("DRV", "w", 200.0), c("w", 15e-15)};
    net.sink_node["out_or"] = "w";
    d.add_net("nand_a", net);
  }
  // nand_b -> long_wire_buf -> out_or over a long resistive route.
  {
    Net net;
    net.name = "to_buf";
    net.parasitics = {r("DRV", "w", 300.0), c("w", 20e-15)};
    net.sink_node["long_wire_buf"] = "w";
    d.add_net("nand_b", net);
  }
  {
    Net net;
    net.name = "long_route";
    net.parasitics = {r("DRV", "s1", 700.0), c("s1", 60e-15),
                      r("s1", "s2", 700.0),  c("s2", 60e-15),
                      r("s2", "s3", 700.0),  c("s3", 60e-15)};
    net.sink_node["out_or"] = "s3";
    d.add_net("long_wire_buf", net);
  }
  d.set_primary_input("in_buf");

  opt.swing = 5.0;
  opt.input_slew = 0.08e-9;
  const auto report = d.analyze(opt);

  timing::PathsResult paths;
  if (k_paths > 0) {
    timing::GraphOptions gopt;
    gopt.required_time = opt.required_time;
    const timing::TimingGraph graph = timing::TimingGraph::build(report, gopt);
    query.k = k_paths;
    paths = timing::k_worst_paths(graph, query);
  }

  if (emit_json) {
    // Pure JSON on stdout: pipeable straight into jq or a dashboard.
    obs::json::Value doc = report_json(report, opt);
    if (k_paths > 0) doc.set("worst_paths", paths_json(paths));
    std::printf("%s\n", doc.dump(2).c_str());
    return 0;
  }

  std::printf("Stage timing report (AWE-backed delay calculation)\n\n");
  std::printf("%-14s %-11s %12s %12s %12s %12s %4s\n", "driver", "net",
              "in arrival", "sink", "stage delay", "sink slew", "q");
  for (const auto& st : report.stages) {
    for (const auto& s : st.sinks) {
      std::printf("%-14s %-11s %12.4e %12s %12.4e %12.4e %4d\n",
                  st.driver_gate.c_str(), st.net.c_str(),
                  st.input_arrival, s.gate.c_str(), s.stage_delay, s.slew,
                  st.awe_order_used);
    }
  }

  std::printf("\narrival times:\n");
  for (const auto& [gate, t] : report.gate_arrival) {
    std::printf("  %-16s %12.4e s\n", gate.c_str(), t);
  }

  std::printf("\ncritical delay: %.4e s\ncritical path:  ",
              report.critical_delay);
  for (std::size_t i = 0; i < report.critical_path.size(); ++i) {
    std::printf("%s%s", i ? " -> " : "", report.critical_path[i].c_str());
  }
  std::printf("\n");

  std::printf("\nslack (worst %.4e s at %s):\n", report.worst_slack,
              report.worst_slack_endpoint.c_str());
  for (const auto& [gate, s] : report.gate_slack) {
    std::printf("  %-16s %12.4e s\n", gate.c_str(), s);
  }

  if (k_paths > 0) {
    std::printf("\n%zu worst path%s%s:\n", paths.paths.size(),
                paths.paths.size() == 1 ? "" : "s",
                paths.truncated ? " (truncated by expansion cap)" : "");
    for (std::size_t i = 0; i < paths.paths.size(); ++i) {
      const timing::Path& p = paths.paths[i];
      std::printf("  #%zu  slack %12.4e s  arrival %12.4e s%s\n", i + 1,
                  p.slack, p.arrival,
                  p.degraded ? "  [degraded]" : "");
      std::printf("      ");
      for (std::size_t j = 0; j < p.points.size(); ++j) {
        std::printf("%s%s", j ? " -> " : "", p.points[j].pin.c_str());
      }
      std::printf("\n");
    }
  }
  return 0;
}
