// Full-flow timing analysis: a small gate-level design (two pipeline-ish
// paths reconverging) with per-net parasitics, analyzed with the
// AWE-backed stage timing engine.  Prints the per-stage timing report,
// arrival times, and the critical path.
#include <cstdio>

#include "timing/analyzer.h"

using namespace awesim;
using timing::Design;
using timing::Gate;
using timing::Net;
using timing::NetElement;

namespace {

NetElement r(const std::string& a, const std::string& b, double v) {
  return {NetElement::Kind::Resistor, a, b, v};
}
NetElement c(const std::string& a, double v) {
  return {NetElement::Kind::Capacitor, a, "0", v};
}

}  // namespace

int main() {
  Design d;
  // Gates: name, drive resistance, input cap, intrinsic delay.
  d.add_gate({"in_buf", 800.0, 3e-15, 15e-12});
  d.add_gate({"nand_a", 1.2e3, 5e-15, 22e-12});
  d.add_gate({"nand_b", 1.2e3, 5e-15, 22e-12});
  d.add_gate({"long_wire_buf", 600.0, 4e-15, 18e-12});
  d.add_gate({"out_or", 1.5e3, 6e-15, 30e-12});

  // in_buf fans out to both nands over a forked net.
  {
    Net net;
    net.name = "fanout2";
    net.parasitics = {r("DRV", "f", 150.0),  c("f", 12e-15),
                      r("f", "pa", 250.0),   c("pa", 18e-15),
                      r("f", "pb", 400.0),   c("pb", 25e-15)};
    net.sink_node["nand_a"] = "pa";
    net.sink_node["nand_b"] = "pb";
    d.add_net("in_buf", net);
  }
  // nand_a -> out_or over a short net.
  {
    Net net;
    net.name = "short";
    net.parasitics = {r("DRV", "w", 200.0), c("w", 15e-15)};
    net.sink_node["out_or"] = "w";
    d.add_net("nand_a", net);
  }
  // nand_b -> long_wire_buf -> out_or over a long resistive route.
  {
    Net net;
    net.name = "to_buf";
    net.parasitics = {r("DRV", "w", 300.0), c("w", 20e-15)};
    net.sink_node["long_wire_buf"] = "w";
    d.add_net("nand_b", net);
  }
  {
    Net net;
    net.name = "long_route";
    net.parasitics = {r("DRV", "s1", 700.0), c("s1", 60e-15),
                      r("s1", "s2", 700.0),  c("s2", 60e-15),
                      r("s2", "s3", 700.0),  c("s3", 60e-15)};
    net.sink_node["out_or"] = "s3";
    d.add_net("long_wire_buf", net);
  }
  d.set_primary_input("in_buf");

  timing::AnalysisOptions opt;
  opt.swing = 5.0;
  opt.input_slew = 0.08e-9;
  const auto report = d.analyze(opt);

  std::printf("Stage timing report (AWE-backed delay calculation)\n\n");
  std::printf("%-14s %-11s %12s %12s %12s %12s %4s\n", "driver", "net",
              "in arrival", "sink", "stage delay", "sink slew", "q");
  for (const auto& st : report.stages) {
    for (const auto& s : st.sinks) {
      std::printf("%-14s %-11s %12.4e %12s %12.4e %12.4e %4d\n",
                  st.driver_gate.c_str(), st.net.c_str(),
                  st.input_arrival, s.gate.c_str(), s.stage_delay, s.slew,
                  st.awe_order_used);
    }
  }

  std::printf("\narrival times:\n");
  for (const auto& [gate, t] : report.gate_arrival) {
    std::printf("  %-16s %12.4e s\n", gate.c_str(), t);
  }

  std::printf("\ncritical delay: %.4e s\ncritical path:  ",
              report.critical_delay);
  for (std::size_t i = 0; i < report.critical_path.size(); ++i) {
    std::printf("%s%s", i ? " -> " : "", report.critical_path[i].c_str());
  }
  std::printf("\n");
  return 0;
}
