// The per-figure step-response cases of the unified runner: each one
// times the full AWE pipeline (fresh Engine + approximate, the bare
// production configuration) on one paper circuit against the
// fixed-step transient reference, and reports the normalized L2
// waveform error as its accuracy metric.
#include <functional>
#include <memory>
#include <string>
#include <utility>

#include "cases.h"
#include "circuits/paper_circuits.h"
#include "core/engine.h"
#include "harness.h"
#include "sim/transient.h"

namespace awesim::bench {

namespace {

struct FigureState {
  circuit::Circuit ckt;
  circuit::NodeId out;
  double horizon = 0.0;
  core::EngineOptions eopt;
  core::Result last;
  waveform::Waveform reference;
};

BenchCase figure_case(std::string name, std::string paper_ref, int order,
                      double horizon, const std::string& out_node,
                      std::function<circuit::Circuit()> make) {
  BenchCase c;
  c.name = std::move(name);
  c.paper_ref = std::move(paper_ref);
  c.accuracy_metric = "rel_l2_vs_sim";
  c.problem_size = make().node_count();
  c.prepare = [make = std::move(make), out_node, order, horizon] {
    auto state = std::make_shared<FigureState>();
    state->ckt = make();
    state->out = state->ckt.find_node(out_node);
    state->horizon = horizon;
    // Bare production configuration (the Fig. 19 cost model): requested
    // order only, no q-vs-(q+1) error estimation.
    state->eopt.order = order;
    state->eopt.estimate_error = false;
    state->eopt.jump_consistent = false;
    PreparedCase p;
    p.run = [state] {
      core::Engine engine(state->ckt);
      state->last = engine.approximate(state->out, state->eopt);
    };
    p.reference = [state] {
      sim::TransientSimulator sim(state->ckt);
      sim::TransientOptions sopt;
      sopt.timestep = state->horizon / 2000.0;
      state->reference = sim.run({state->out}, state->horizon, sopt);
    };
    p.accuracy = [state] {
      const auto wave =
          state->last.approximation.sample(0.0, state->horizon, 2001);
      return wave.relative_error_vs(state->reference);
    };
    return p;
  };
  return c;
}

}  // namespace

void register_figure_cases() {
  // Fig. 7: first-order (q=1) step response of the fig. 4 RC tree;
  // Elmore(n4) = 0.6 ms sets the 3 ms window.
  register_bench(figure_case("fig07.firstorder_step", "Fig. 7", 1, 3e-3,
                             "n4", [] {
                               return circuits::fig4_rc_tree();
                             }));
  // Fig. 15: the q=2 match on the same tree (the paper's visually exact
  // second-order curve).
  register_bench(figure_case("fig15.secondorder_step", "Fig. 15", 2, 3e-3,
                             "n4", [] {
                               return circuits::fig4_rc_tree();
                             }));
  // Fig. 17: stiff MOS interconnect tree driven through a 1 ns ramp;
  // dominant time constant ~0.55 ns.
  register_bench(figure_case("fig17.mos_interconnect", "Figs. 17/18", 2,
                             8e-9, "n7", [] {
                               return circuits::fig16_mos_interconnect(
                                   {0.0, 5.0, 1e-9});
                             }));
  // Fig. 26: underdamped RLC ladder, q=4 captures the two dominant
  // complex pairs (overshoot and ring).
  register_bench(figure_case("fig26.rlc_underdamped", "Figs. 26/27", 4,
                             1e-8, "n3", [] {
                               return circuits::fig25_rlc_ladder();
                             }));
}

}  // namespace awesim::bench
