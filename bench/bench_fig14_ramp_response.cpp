// Fig. 14: first-order AWE ramp-response superposition (Section 4.3) for
// the Fig. 4 tree driven by a 5 V input with a 1 ms rise time, vs the
// reference simulation.
//
// Reproduced content:
//   * the response is synthesized as a positive ramp atom plus a shifted
//     negative ramp atom (the paper's Fig. 13 superposition);
//   * the q=1 particular solution is v_p(t) = 5e3*t - 3.5 (slope times
//     the 0.6 ms Elmore delay, eq. 63);
//   * without m_{-2} matching the approximation starts with a small
//     wrong-signed slope glitch at t=0; matching m_{-2} (Section 4.3's
//     extended matching) removes it.
#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "circuits/paper_circuits.h"
#include "core/engine.h"
#include "sim/transient.h"

using namespace awesim;

int main() {
  bench::print_header("FIG. 14",
                      "first-order ramp response (1 ms rise) at C4 vs "
                      "reference simulation");
  circuits::Drive drive;
  drive.rise_time = 1e-3;
  auto ckt = circuits::fig4_rc_tree(drive);
  const auto out = ckt.find_node("n4");

  core::Engine engine(ckt);
  core::EngineOptions plain;
  plain.order = 1;
  const auto r_plain = engine.approximate(out, plain);

  core::EngineOptions slope;
  slope.order = 1;
  slope.match_initial_slope = true;
  const auto r_slope = engine.approximate(out, slope);

  sim::TransientSimulator sim(ckt);
  sim::AdaptiveOptions aopt;
  aopt.tolerance = 1e-7;
  const double t_end = 5e-3;
  const auto ref = sim.run_adaptive({out}, t_end, aopt);

  bench::print_waveform_comparison(
      ref, "sim",
      {{"awe q=1", &r_plain.approximation},
       {"awe q=1+slope", &r_slope.approximation}},
      0.0, t_end, 26);

  // The ramp atom's particular solution, the paper's eq. 63.
  const auto& atom = r_plain.approximation.atoms()[1];
  std::printf("\n");
  bench::print_metric("ramp particular slope (paper: 5e3 V/s)",
                      atom.affine_slope, "V/s");
  bench::print_metric("ramp particular offset (paper: -3.5 V)",
                      atom.affine_offset, "V");
  bench::print_metric("measured error, q=1",
                      bench::measured_error(r_plain.approximation, ref, 0.0,
                                            t_end));
  bench::print_metric("measured error, q=1 with m_-2 matching",
                      bench::measured_error(r_slope.approximation, ref, 0.0,
                                            t_end));
  // Initial-slope glitch depth: most negative excursion in the first
  // tenth of the ramp.
  auto min_early = [&](const core::Approximation& a) {
    double m = 1e300;
    for (int i = 0; i <= 200; ++i) {
      m = std::min(m, a.value(1e-4 * i / 200.0));
    }
    return m;
  };
  bench::print_metric("initial glitch depth without m_-2",
                      min_early(r_plain.approximation), "V");
  bench::print_metric("initial glitch depth with m_-2",
                      min_early(r_slope.approximation), "V");
  return 0;
}
