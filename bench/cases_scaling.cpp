// Scaling and amortization cases of the unified runner:
//
//   * speedup.rc_line_*: the Section I "1000x faster than simulation"
//     claim on uniform RC lines -- AWE q=3 vs the fixed-step transient
//     reference, accuracy = 50% delay disagreement;
//   * batch.multisink32: one Engine::approximate_all over a 32-sink
//     comb net (accuracy = worst waveform deviation vs the per-output
//     pipelines, expected bitwise 0);
//   * timing.wavefront: the levelized parallel timing analyzer
//     (accuracy = critical-delay deviation vs the serial walk,
//     expected bitwise 0).
#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cases.h"
#include "circuit/circuit.h"
#include "circuits/paper_circuits.h"
#include "core/engine.h"
#include "harness.h"
#include "sim/transient.h"
#include "timing/analyzer.h"

namespace awesim::bench {

namespace {

core::EngineOptions bare_options(int order) {
  core::EngineOptions opt;
  opt.order = order;
  opt.estimate_error = false;
  opt.jump_consistent = false;
  return opt;
}

struct LineState {
  circuit::Circuit ckt;
  circuit::NodeId out;
  double horizon = 0.0;
  std::optional<double> delay_awe;
  std::optional<double> delay_sim;
};

BenchCase rc_line_case(std::size_t sections, bool quick_tier) {
  BenchCase c;
  c.name = "speedup.rc_line_" + std::to_string(sections);
  c.paper_ref = "Section I";
  c.accuracy_metric = "delay50_rel_err_vs_sim";
  c.problem_size = sections;
  c.quick_tier = quick_tier;
  c.prepare = [sections] {
    auto state = std::make_shared<LineState>();
    const double r_total = 1e3 * static_cast<double>(sections);
    const double c_total = 1e-12 * static_cast<double>(sections);
    state->ckt = circuits::rc_line(sections, r_total, c_total);
    state->out = state->ckt.find_node("n" + std::to_string(sections));
    // Elmore delay of the uniform line is ~RC/2; 4x the full RC product
    // comfortably covers the 50% crossing and the settling tail.
    state->horizon = 4.0 * r_total * c_total;
    PreparedCase p;
    p.run = [state] {
      core::Engine engine(state->ckt);
      const auto r = engine.approximate(state->out, bare_options(3));
      state->delay_awe =
          r.approximation.first_crossing(2.5, 0.0, state->horizon);
    };
    p.reference = [state] {
      sim::TransientSimulator sim(state->ckt);
      sim::TransientOptions sopt;
      sopt.timestep = state->horizon / 2000.0;
      const auto w = sim.run({state->out}, state->horizon, sopt);
      state->delay_sim = w.first_crossing(2.5);
    };
    p.accuracy = [state]() -> double {
      if (!state->delay_awe || !state->delay_sim ||
          *state->delay_sim == 0.0) {
        return std::numeric_limits<double>::quiet_NaN();
      }
      return std::abs(*state->delay_awe - *state->delay_sim) /
             *state->delay_sim;
    };
    return p;
  };
  return c;
}

constexpr std::size_t kSinks = 32;

// The 32-sink interconnect comb of bench_batch_multisink: a resistive
// spine with one RC branch and one loaded sink tap per section.
circuit::Circuit comb_net(std::vector<circuit::NodeId>& sinks) {
  circuit::Circuit ckt;
  const auto vin = ckt.node("in");
  ckt.add_vsource("Vdrv", vin, circuit::kGround,
                  circuit::Stimulus::ramp_step(0.0, 5.0, 0.1e-9));
  auto spine = ckt.node("s0");
  ckt.add_resistor("Rdrv", vin, spine, 200.0);
  for (std::size_t i = 0; i < kSinks; ++i) {
    const std::string tag = std::to_string(i);
    const auto next = ckt.node("s" + std::to_string(i + 1));
    ckt.add_resistor("Rs" + tag, spine, next, 40.0);
    ckt.add_capacitor("Cs" + tag, next, circuit::kGround, 8e-15);
    const auto sink = ckt.node("t" + tag);
    ckt.add_resistor("Rt" + tag, next, sink, 120.0);
    ckt.add_capacitor("Ct" + tag, sink, circuit::kGround, 12e-15);
    sinks.push_back(sink);
    spine = next;
  }
  return ckt;
}

struct BatchState {
  circuit::Circuit ckt;
  std::vector<circuit::NodeId> sinks;
  std::vector<core::Result> batch;
};

BenchCase batch_case() {
  BenchCase c;
  c.name = "batch.multisink32";
  c.paper_ref = "Fig. 19 (amortization)";
  c.accuracy_metric = "max_abs_dev_vs_peroutput_V";
  c.problem_size = kSinks;
  c.prepare = [] {
    auto state = std::make_shared<BatchState>();
    state->ckt = comb_net(state->sinks);
    PreparedCase p;
    p.run = [state] {
      core::Engine engine(state->ckt);
      state->batch =
          engine.approximate_all(state->sinks, bare_options(3)).results;
    };
    p.accuracy = [state] {
      // Per-output pipelines must reproduce the batch bitwise.
      double max_dev = 0.0;
      for (std::size_t i = 0; i < state->sinks.size(); ++i) {
        core::Engine engine(state->ckt);
        const auto single =
            engine.approximate(state->sinks[i], bare_options(3));
        for (int k = 0; k <= 50; ++k) {
          const double t = 2e-9 * k / 50.0;
          max_dev = std::max(
              max_dev,
              std::abs(single.approximation.value(t) -
                       state->batch[i].approximation.value(t)));
        }
      }
      return max_dev;
    };
    return p;
  };
  return c;
}

// A wide gate-level design: `chains` parallel 4-stage chains fanning
// out of one root driver, so every wavefront past the first holds
// `chains` independent stages.
timing::Design wide_design(std::size_t chains) {
  timing::Design d;
  d.add_gate({"root", 500.0, 4e-15, 0.0});
  d.set_primary_input("root");
  timing::Net fan;
  fan.name = "fanout";
  fan.parasitics = {{timing::NetElement::Kind::Resistor, "DRV", "h", 150.0},
                    {timing::NetElement::Kind::Capacitor, "h", "0", 20e-15}};
  for (std::size_t c = 0; c < chains; ++c) {
    fan.sink_node["g" + std::to_string(c) + "_0"] = "h";
  }
  for (std::size_t c = 0; c < chains; ++c) {
    for (int s = 0; s < 4; ++s) {
      const std::string name =
          "g" + std::to_string(c) + "_" + std::to_string(s);
      d.add_gate({name, 800.0 + 60.0 * static_cast<double>(c), 5e-15,
                  5e-12});
      if (s > 0) {
        timing::Net net;
        net.name = name + "_in";
        net.parasitics = {
            {timing::NetElement::Kind::Resistor, "DRV", "w",
             300.0 + 25.0 * static_cast<double>(s)},
            {timing::NetElement::Kind::Capacitor, "w", "0", 30e-15}};
        net.sink_node[name] = "w";
        d.add_net("g" + std::to_string(c) + "_" + std::to_string(s - 1),
                  net);
      }
    }
  }
  d.add_net("root", fan);
  return d;
}

struct WavefrontState {
  timing::Design design;
  timing::TimingReport parallel;

  WavefrontState() : design(wide_design(8)) {}
};

BenchCase wavefront_case() {
  BenchCase c;
  c.name = "timing.wavefront";
  c.paper_ref = "timing analyzer";
  c.accuracy_metric = "critical_delay_abs_dev_vs_serial_s";
  c.problem_size = 8 * 4 + 1;  // gates in wide_design(8)
  c.prepare = [] {
    auto state = std::make_shared<WavefrontState>();
    PreparedCase p;
    p.run = [state] {
      timing::AnalysisOptions opt;
      opt.threads = 0;  // hardware concurrency
      state->parallel = state->design.analyze(opt);
    };
    p.accuracy = [state] {
      timing::AnalysisOptions opt;
      opt.threads = 1;
      const auto serial = state->design.analyze(opt);
      return std::abs(serial.critical_delay -
                      state->parallel.critical_delay);
    };
    return p;
  };
  return c;
}

}  // namespace

void register_scaling_cases() {
  register_bench(rc_line_case(200, /*quick_tier=*/true));
  register_bench(rc_line_case(1000, /*quick_tier=*/false));
  register_bench(batch_case());
  register_bench(wavefront_case());
}

}  // namespace awesim::bench
