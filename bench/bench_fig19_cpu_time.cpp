// Fig. 19: CPU time comparison between the first-order approximation and
// the *incremental* cost of moving to second order (Fig. 16 circuit).
//
// Reproduced content: the first-order cost is dominated by setting up and
// LU-factoring the circuit equations and finding the steady state and
// m_0; the second-order increment reuses the factorization and only adds
// two forward/back substitutions plus a tiny 2x2 solve, so it is a small
// fraction of the first-order cost (the paper's bar chart).
#include <benchmark/benchmark.h>

#include "circuits/paper_circuits.h"
#include "core/engine.h"

using namespace awesim;

namespace {

circuits::Drive drive_1ns() {
  circuits::Drive d;
  d.rise_time = 1e-9;
  return d;
}

core::EngineOptions bare_options(int order) {
  core::EngineOptions opt;
  opt.order = order;
  opt.estimate_error = false;   // measure the bare approximation
  opt.jump_consistent = false;  // no sigma solves in the timing path
  return opt;
}

// Full first-order analysis from scratch: stamp, factor, steady state,
// m_0, 1-pole model.
void BM_FirstOrderFromScratch(benchmark::State& state) {
  auto ckt = circuits::fig16_mos_interconnect(drive_1ns());
  const auto out = ckt.find_node("n7");
  for (auto _ : state) {
    core::Engine engine(ckt);
    auto result = engine.approximate(out, bare_options(1));
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_FirstOrderFromScratch);

// Incremental second order: the engine has already produced the
// first-order answer (factorization and low moments cached); measure only
// the extra work for q=2.
void BM_SecondOrderIncremental(benchmark::State& state) {
  auto ckt = circuits::fig16_mos_interconnect(drive_1ns());
  const auto out = ckt.find_node("n7");
  core::Engine engine(ckt);
  auto first = engine.approximate(out, bare_options(1));
  benchmark::DoNotOptimize(first);
  for (auto _ : state) {
    state.PauseTiming();
    // Fresh engine with the q=1 state rebuilt, so each iteration measures
    // the same increment (moments are cached inside the engine).
    core::Engine fresh(ckt);
    auto warm = fresh.approximate(out, bare_options(1));
    benchmark::DoNotOptimize(warm);
    state.ResumeTiming();
    auto result = fresh.approximate(out, bare_options(2));
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_SecondOrderIncremental);

// For context: second order from scratch (still cheap).
void BM_SecondOrderFromScratch(benchmark::State& state) {
  auto ckt = circuits::fig16_mos_interconnect(drive_1ns());
  const auto out = ckt.find_node("n7");
  for (auto _ : state) {
    core::Engine engine(ckt);
    auto result = engine.approximate(out, bare_options(2));
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_SecondOrderFromScratch);

}  // namespace

BENCHMARK_MAIN();
