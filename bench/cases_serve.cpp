// Service-layer throughput cases: a real `serve` daemon (loopback TCP,
// ephemeral port) under 1, 8, and 32 concurrent clients.
//
// Each timed repetition has every client connect, then issue a fixed
// number of strictly serial (send, await response) analyze / worst_paths
// / ping / stats requests, recording per-request latency.  The design is small and the
// snapshot's report memoized after the first hit, so the measurement is
// dominated by what a service actually adds on top of analysis: framing,
// parsing, admission, dispatch, response rendering, and socket hops.
//
// Beyond wall_ms, each case emits schema-v2 extra metrics:
//   qps        requests completed per second over the timed repetition
//   p50_ms     median per-request latency
//   p99_ms     99th-percentile per-request latency
//   requests   requests per repetition (clients x per-client count)
// into BENCH_results.json, which is what the CI serve-smoke leg uploads.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "cases.h"
#include "harness.h"
#include "serve/protocol.h"
#include "serve/server.h"

namespace awesim::bench {

namespace {

/// Minimal blocking NDJSON client over loopback TCP.
class LineClient {
 public:
  explicit LineClient(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) throw std::runtime_error("bench serve: socket failed");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      ::close(fd_);
      fd_ = -1;
      throw std::runtime_error("bench serve: connect failed");
    }
  }
  ~LineClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  LineClient(const LineClient&) = delete;
  LineClient& operator=(const LineClient&) = delete;

  std::string roundtrip(const std::string& request) {
    std::string framed = request;
    framed.push_back('\n');
    std::size_t off = 0;
    while (off < framed.size()) {
      const ssize_t n = ::send(fd_, framed.data() + off,
                               framed.size() - off, MSG_NOSIGNAL);
      if (n <= 0) throw std::runtime_error("bench serve: send failed");
      off += static_cast<std::size_t>(n);
    }
    for (;;) {
      const std::size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        std::string line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return line;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) throw std::runtime_error("bench serve: recv failed");
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

struct ServeState {
  std::unique_ptr<serve::Server> server;
  int port = 0;
  std::size_t clients = 1;
  std::size_t per_client = 0;
  /// Per-request latencies of the last timed repetition, ms.
  std::vector<double> latencies_ms;
  double last_window_s = 0.0;
};

double percentile_ms(std::vector<double> samples, double p) {
  if (samples.empty()) return std::numeric_limits<double>::quiet_NaN();
  std::sort(samples.begin(), samples.end());
  const double rank = p * static_cast<double>(samples.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] + (samples[hi] - samples[lo]) * frac;
}

/// The read-mostly request mix one client plays, round-robin.
const std::vector<std::string>& request_mix() {
  static const std::vector<std::string> kMix = {
      R"({"id":1,"method":"analyze"})",
      R"({"id":2,"method":"worst_paths","params":{"k":2}})",
      R"({"id":3,"method":"ping"})",
      R"({"id":4,"method":"stats"})",
  };
  return kMix;
}

void run_clients(ServeState& state) {
  std::vector<std::vector<double>> per_thread(state.clients);
  std::vector<std::thread> threads;
  threads.reserve(state.clients);
  const auto t0 = Clock::now();
  for (std::size_t t = 0; t < state.clients; ++t) {
    threads.emplace_back([&state, &per_thread, t] {
      LineClient client(state.port);
      auto& lat = per_thread[t];
      lat.reserve(state.per_client);
      const auto& mix = request_mix();
      for (std::size_t i = 0; i < state.per_client; ++i) {
        const auto r0 = Clock::now();
        const std::string response =
            client.roundtrip(mix[(t + i) % mix.size()]);
        lat.push_back(seconds_since(r0) * 1e3);
        if (response.find("\"ok\":") == std::string::npos) {
          throw std::runtime_error("bench serve: malformed response");
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  state.last_window_s = seconds_since(t0);
  state.latencies_ms.clear();
  for (const auto& lat : per_thread) {
    state.latencies_ms.insert(state.latencies_ms.end(), lat.begin(),
                              lat.end());
  }
}

BenchCase serve_case(std::size_t clients, bool quick_tier) {
  BenchCase bc;
  bc.name = "serve.throughput_c" + std::to_string(clients);
  bc.paper_ref = "service layer";
  bc.problem_size = clients;
  bc.quick_tier = quick_tier;
  bc.prepare = [clients] {
    auto state = std::make_shared<ServeState>();
    state->clients = clients;
    state->per_client = clients >= 32 ? 8 : 25;
    serve::ServeOptions opts;
    opts.tcp_port = 0;  // ephemeral
    opts.workers = 2;
    opts.max_clients = clients + 4;
    opts.max_queue = 256;
    opts.max_inflight_per_client = 8;
    timing::AnalysisOptions analysis;
    analysis.threads = 1;  // requests are the concurrency unit here
    state->server = std::make_unique<serve::Server>(
        serve::builtin_design("fanout8"), analysis, opts);
    state->server->start();
    state->port = state->server->tcp_port();

    PreparedCase p;
    p.run = [state] { run_clients(*state); };
    p.extra = [state]() -> std::vector<std::pair<std::string, double>> {
      const double total =
          static_cast<double>(state->clients * state->per_client);
      const double qps = state->last_window_s > 0.0
                             ? total / state->last_window_s
                             : std::numeric_limits<double>::quiet_NaN();
      return {
          {"qps", qps},
          {"p50_ms", percentile_ms(state->latencies_ms, 0.50)},
          {"p99_ms", percentile_ms(state->latencies_ms, 0.99)},
          {"requests", total},
      };
    };
    return p;
  };
  return bc;
}

}  // namespace

void register_serve_cases() {
  register_bench(serve_case(1, /*quick_tier=*/true));
  register_bench(serve_case(8, /*quick_tier=*/true));
  register_bench(serve_case(32, /*quick_tier=*/false));
}

}  // namespace awesim::bench
