// Figs. 17 and 18: first- and second-order approximations for the stiff
// MOS interconnect tree (Fig. 16) driven with a 1 ns input slope.
//
// Reproduced content: first order lands within a few percent (paper:
// 4.4%), second order is plot-indistinguishable (paper: 0.15%); the stiff
// small time constants never have to be resolved to get there.
#include <cstdio>

#include "bench_common.h"
#include "circuits/paper_circuits.h"
#include "core/engine.h"
#include "sim/transient.h"

using namespace awesim;

int main() {
  bench::print_header("FIGS. 17/18",
                      "MOS interconnect tree (Fig. 16), 1 ns input slope, "
                      "voltage at C7");
  circuits::Drive drive;
  drive.rise_time = 1e-9;
  auto ckt = circuits::fig16_mos_interconnect(drive);
  const auto out = ckt.find_node("n7");
  core::Engine engine(ckt);

  core::EngineOptions o1;
  o1.order = 1;
  const auto r1 = engine.approximate(out, o1);
  core::EngineOptions o2;
  o2.order = 2;
  const auto r2 = engine.approximate(out, o2);

  sim::TransientSimulator sim(ckt);
  sim::AdaptiveOptions aopt;
  aopt.tolerance = 1e-7;
  const double t_end = 8e-9;
  const auto ref = sim.run_adaptive({out}, t_end, aopt);

  bench::print_waveform_comparison(
      ref, "sim",
      {{"awe q=1", &r1.approximation}, {"awe q=2", &r2.approximation}},
      0.0, t_end, 21);

  std::printf("\n");
  bench::print_metric("error estimate q=1 (paper: 4.4%)",
                      r1.error_estimate);
  bench::print_metric("error estimate q=2 (paper: 0.15%)",
                      r2.error_estimate);
  bench::print_metric("measured error q=1 vs sim",
                      bench::measured_error(r1.approximation, ref, 0.0,
                                            t_end));
  bench::print_metric("measured error q=2 vs sim",
                      bench::measured_error(r2.approximation, ref, 0.0,
                                            t_end));
  // Stiffness on display: actual pole magnitudes span decades.
  const auto actual = engine.actual_poles();
  bench::print_metric("slowest actual pole", actual.front().real(),
                      "rad/s");
  bench::print_metric("fastest actual pole", actual.back().real(),
                      "rad/s");
  return 0;
}
