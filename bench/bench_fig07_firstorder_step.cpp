// Fig. 7: first-order AWE step response at C4 of the Fig. 4 RC tree,
// compared with the reference ("SPICE") simulation.
//
// Reproduced content: the single-exponential fit with the Elmore time
// constant tracks the simulated response but shows visible error in the
// knee (the paper quotes a 36% transient error term for this fit).
#include <cstdio>

#include "bench_common.h"
#include "circuits/paper_circuits.h"
#include "core/engine.h"
#include "sim/transient.h"

using namespace awesim;

int main() {
  bench::print_header("FIG. 7",
                      "first-order AWE step response at C4 (Fig. 4 tree) "
                      "vs reference simulation");
  auto ckt = circuits::fig4_rc_tree();
  const auto out = ckt.find_node("n4");

  core::Engine engine(ckt);
  core::EngineOptions opt;
  opt.order = 1;
  const auto result = engine.approximate(out, opt);

  sim::TransientSimulator sim(ckt);
  sim::AdaptiveOptions aopt;
  aopt.tolerance = 1e-7;
  const double t_end = 4e-3;
  const auto ref = sim.run_adaptive({out}, t_end, aopt);

  bench::print_waveform_comparison(ref, "sim", {{"awe q=1",
                                                 &result.approximation}},
                                   0.0, t_end, 21);

  std::printf("\n");
  bench::print_metric("Elmore delay at n4 (= -1/pole)",
                      engine.elmore_delay(out), "s");
  bench::print_metric("error estimate (q=1 vs q=2, eq. 39)",
                      result.error_estimate);
  bench::print_metric("measured transient error vs sim",
                      bench::measured_error(result.approximation, ref, 0.0,
                                            t_end));
  bench::print_note("paper's reported error term at first order: 36%");
  return 0;
}
