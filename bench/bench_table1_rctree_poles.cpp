// Table I: approximating and exact poles for the stiff RC tree (Fig. 16),
// with and without the nonequilibrium initial condition on C6.
//
// Paper's qualitative content reproduced here:
//   * the 1st-order pole approximates the dominant actual pole;
//   * the 2nd-order poles land close to the first two actual poles;
//   * with v_C6(0) = 5 V a low-frequency zero partially cancels the second
//     pole, and the 2nd-order approximation instead finds a pole beyond it
//     ("the two most dominant poles" shift);
//   * the actual pole list spans several decades (stiffness).
#include <cstdio>

#include "bench_common.h"
#include "circuits/paper_circuits.h"
#include "core/engine.h"

using namespace awesim;

namespace {

la::ComplexVector approx_poles(core::Engine& engine, circuit::NodeId out,
                               int q) {
  core::EngineOptions opt;
  opt.order = q;
  const auto result = engine.approximate(out, opt);
  la::ComplexVector poles;
  for (const auto& atom : result.approximation.atoms()) {
    for (const auto& t : atom.terms) poles.push_back(t.pole);
    if (!atom.terms.empty()) break;  // first active atom only, like Table I
  }
  std::sort(poles.begin(), poles.end(),
            [](la::Complex a, la::Complex b) {
              return std::abs(a) < std::abs(b);
            });
  return poles;
}

}  // namespace

int main() {
  bench::print_header("TABLE I",
                      "approximating and exact poles, stiff RC tree "
                      "(Fig. 16), 1 ns input slope");

  circuits::Drive drive;
  drive.rise_time = 1e-9;

  // --- No initial conditions: observe the output node n7 (at C7).
  {
    auto ckt = circuits::fig16_mos_interconnect(drive);
    core::Engine engine(ckt);
    const auto out = ckt.find_node("n7");
    const auto q1 = approx_poles(engine, out, 1);
    const auto q2 = approx_poles(engine, out, 2);
    const auto actual = engine.actual_poles();
    std::printf("\n[no initial conditions, output at C7]\n");
    bench::print_pole_table({"1st order", "2nd order", "actual"},
                            {q1, q2, actual});
  }

  // --- v_C6(0) = 5 V: observe the disturbed node (C6), the subject of
  // Figs. 20/21.
  {
    auto ckt = circuits::fig16_mos_interconnect(drive, 5.0);
    core::Engine engine(ckt);
    const auto out = ckt.find_node("n6");
    const auto q1 = approx_poles(engine, out, 1);
    const auto q2 = approx_poles(engine, out, 2);
    const auto actual = engine.actual_poles();
    std::printf("\n[v_C6(0) = 5 V, output at C6]\n");
    bench::print_pole_table({"1st order", "2nd order", "actual"},
                            {q1, q2, actual});
    bench::print_note(
        "the IC introduces a low-frequency zero; the 2nd-order match "
        "selects a second pole past the partially cancelled one, as in "
        "the paper");
  }
  return 0;
}
