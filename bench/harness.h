// The machine-readable benchmark harness behind `awesim_bench`.
//
// Every reproduced table/figure bench used to carry its own copy of the
// best-of-k stopwatch loop; this header is the single home for that
// timing logic plus the registration interface the unified runner
// consumes.  A bench registers one BenchCase (name, paper reference,
// problem size, and a prepare() closure); the harness owns the protocol:
//
//   prepare -> one warmup rep (AWE side and, when present, the
//   sim::transient reference) -> obs::reset_phases() -> N timed AWE
//   repetitions -> phase snapshot -> N timed reference repetitions ->
//   one accuracy evaluation.
//
// Results serialize to the schema-versioned BENCH_results.json
// (kSchemaName / kSchemaVersion below); validate_schema() is the same
// checker the runner applies to its own output before exiting 0, so a
// schema drift fails CI instead of silently shipping unreadable numbers.
#pragma once

#include <chrono>
#include <cmath>
#include <cstddef>
#include <functional>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.h"
#include "obs/trace.h"

namespace awesim::bench {

inline constexpr const char* kSchemaName = "awesim-bench-results";
/// v2: every bench carries an `extra` object of named scalar metrics
/// (may be empty) -- service benches report qps / latency percentiles,
/// sweep benches report stage-cache reuse and eviction counts.
inline constexpr int kSchemaVersion = 2;

using Clock = std::chrono::steady_clock;

inline double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Wall time of one call of `fn`, in milliseconds.
template <typename F>
double time_once_ms(F&& fn) {
  const auto t0 = Clock::now();
  fn();
  return seconds_since(t0) * 1e3;
}

/// Best (minimum) of `repeats` runs, in milliseconds.  The hoisted
/// replacement for the per-bench `time_ms` copies.
template <typename F>
double time_ms_best(F&& fn, int repeats) {
  double best = std::numeric_limits<double>::infinity();
  for (int i = 0; i < repeats; ++i) {
    best = std::min(best, time_once_ms(fn));
  }
  return best;
}

/// All `repeats` run times after `warmup` untimed calls, in milliseconds
/// and in run order.
template <typename F>
std::vector<double> time_samples_ms(F&& fn, int repeats, int warmup = 1) {
  for (int i = 0; i < warmup; ++i) fn();
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(std::max(repeats, 0)));
  for (int i = 0; i < repeats; ++i) {
    samples.push_back(time_once_ms(fn));
  }
  return samples;
}

/// Median of the samples (NaN when empty).
double median_of(std::vector<double> samples);

/// Minimum of the samples (NaN when empty).
double min_of(const std::vector<double>& samples);

/// What one registered bench hands the harness after setup: the timed
/// workload plus optional baseline and accuracy closures.  The closures
/// may share state (e.g. the last computed approximation feeding the
/// accuracy metric).
struct PreparedCase {
  /// One timed repetition of the AWE-side workload.  Required.
  std::function<void()> run;
  /// One timed repetition of the sim::transient reference for the same
  /// problem.  Optional; when absent the result carries no speedup.
  std::function<void()> reference;
  /// Evaluated once after the timed repetitions.  Optional.
  std::function<double()> accuracy;
  /// Case-specific named scalar metrics (qps, p99 latency, cache
  /// evictions), evaluated once after the timed repetitions and
  /// serialized into the result's `extra` object.  Optional.
  std::function<std::vector<std::pair<std::string, double>>()> extra;
};

struct BenchCase {
  /// Stable machine name, e.g. "fig15.secondorder_step".
  std::string name;
  /// Which part of the paper this regenerates, e.g. "Fig. 15".
  std::string paper_ref;
  /// What `accuracy` measures, e.g. "rel_l2_vs_sim".  Empty when the
  /// case has no accuracy closure.
  std::string accuracy_metric;
  /// Characteristic size (circuit nodes, sinks, stages).
  std::size_t problem_size = 0;
  /// Included in the --quick tier (CI).  Leave true unless the case is
  /// too slow for a per-commit run.
  bool quick_tier = true;
  /// Builds the circuit/design and returns the closures.  Called once
  /// per run_case.
  std::function<PreparedCase()> prepare;
};

struct RunOptions {
  bool quick = false;
  /// 0 = tier default (3 quick, 7 full).
  int repeats = 0;
};

struct BenchResult {
  std::string name;
  std::string paper_ref;
  std::string accuracy_metric;
  std::size_t problem_size = 0;
  int repeats = 0;
  /// Per-repetition wall time of the AWE workload, run order.
  std::vector<double> wall_ms;
  /// Per-repetition wall time of the reference simulation; empty when
  /// the case registered none.
  std::vector<double> sim_ms;
  /// NaN when the case registered no accuracy closure.
  double accuracy = std::numeric_limits<double>::quiet_NaN();
  /// Phase breakdown of the timed AWE window (true window extrema: the
  /// harness resets the registry before the timed repetitions).
  obs::PhaseBreakdown phases;
  /// Named scalar metrics from the case's extra closure, in emit order
  /// (schema v2: always serialized, possibly empty; non-finite values
  /// become null).
  std::vector<std::pair<std::string, double>> extra;
};

/// Register a case.  Call from the register_*_cases() functions -- the
/// harness is a static library, so static-initializer registration
/// would be dropped by the linker.
void register_bench(BenchCase c);

const std::vector<BenchCase>& registry();

/// Run one case under the protocol described at the top of this header.
BenchResult run_case(const BenchCase& c, const RunOptions& options);

/// median(sim) / median(wall); NaN when the case has no reference.
double speedup_vs_sim(const BenchResult& r);

/// Serialize to the BENCH_results.json schema.
obs::json::Value to_json(const std::vector<BenchResult>& results,
                         const RunOptions& options);

/// Validate a parsed results document against the schema.  Returns one
/// human-readable message per violation; empty means valid.
std::vector<std::string> validate_schema(const obs::json::Value& doc);

}  // namespace awesim::bench
