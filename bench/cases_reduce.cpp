// Hierarchical-reduction cases of the unified runner:
//
//   * reduce.rc_mesh_10k (quick tier): the accuracy control -- a
//     10k-node generated mesh fabric analyzed cold through
//     reduce::HierSession vs the flat analyzer; accuracy is the worst
//     absolute stage-delay disagreement in seconds (the documented
//     <= 1e-9 s contract);
//   * speedup.rc_mesh_1M (full tier): the headline row -- a generated
//     1M-node design (1000 nets x 1000 interior nodes, 8 repeated cell
//     variants) analyzed end-to-end, reduction, stitching, and timing
//     included, against the flat analysis of the same design.
//
// Both cases time *cold* hierarchical runs (clear_cache per rep), so
// wall_ms includes partitioning, collapse, verification, and the
// stitched analysis -- not just a warm cache replay.  The repeated-cell
// dedup is still visible: each cold rep computes `variants` reductions
// and rehydrates the other (stages - variants) from the store.
#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cases.h"
#include "harness.h"
#include "reduce/generate.h"
#include "reduce/hier.h"
#include "timing/analyzer.h"

namespace awesim::bench {

namespace {

/// Worst absolute per-sink stage-delay disagreement, in seconds.
double max_delay_err(const timing::TimingReport& a,
                     const timing::TimingReport& b) {
  if (a.stages.size() != b.stages.size()) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  double worst = 0.0;
  for (std::size_t i = 0; i < a.stages.size(); ++i) {
    if (a.stages[i].sinks.size() != b.stages[i].sinks.size()) {
      return std::numeric_limits<double>::quiet_NaN();
    }
    for (std::size_t s = 0; s < a.stages[i].sinks.size(); ++s) {
      worst = std::max(worst, std::abs(a.stages[i].sinks[s].stage_delay -
                                       b.stages[i].sinks[s].stage_delay));
    }
  }
  return worst;
}

struct ReduceState {
  std::unique_ptr<reduce::HierSession> hier;
  timing::TimingReport reduced_report;
  timing::TimingReport flat_report;
};

BenchCase mesh_case(std::string name, std::size_t target_nodes,
                    bool quick_tier) {
  BenchCase c;
  c.name = std::move(name);
  c.paper_ref = "Section II (stage decomposition at scale)";
  c.accuracy_metric = "max_abs_delay_err_vs_flat_s";
  c.problem_size = target_nodes;
  c.quick_tier = quick_tier;
  c.prepare = [target_nodes] {
    reduce::MegaSpec spec;
    spec.style = reduce::MegaSpec::Style::Mesh;
    spec.target_nodes = target_nodes;
    spec.cell_nodes = 1000;
    spec.variants = 8;
    spec.seed = 1;
    auto state = std::make_shared<ReduceState>();
    // The session owns the only flat copy; the reference closure
    // analyzes the same instance through the read accessor.
    state->hier =
        std::make_unique<reduce::HierSession>(reduce::mega_design(spec));
    PreparedCase p;
    p.run = [state] {
      state->hier->clear_cache();  // every rep is a full cold collapse
      state->reduced_report = state->hier->analyze();
    };
    p.reference = [state] {
      state->flat_report = state->hier->design().analyze();
    };
    p.accuracy = [state] {
      return max_delay_err(state->flat_report, state->reduced_report);
    };
    p.extra = [state] {
      const reduce::HierSession::Stats st = state->hier->stats();
      std::vector<std::pair<std::string, double>> extra;
      extra.emplace_back("nets_total", static_cast<double>(st.nets_total));
      extra.emplace_back("nets_reduced",
                         static_cast<double>(st.nets_reduced));
      extra.emplace_back("interior_eliminated",
                         static_cast<double>(st.interior_eliminated));
      extra.emplace_back("macro_states",
                         static_cast<double>(st.macro_states));
      extra.emplace_back("reductions_performed",
                         static_cast<double>(st.reductions_performed));
      extra.emplace_back("reduction_cache_hits",
                         static_cast<double>(st.reduction_cache_hits));
      return extra;
    };
    return p;
  };
  return c;
}

}  // namespace

void register_reduce_cases() {
  register_bench(mesh_case("reduce.rc_mesh_10k", 10'000,
                           /*quick_tier=*/true));
  register_bench(mesh_case("speedup.rc_mesh_1M", 1'000'000,
                           /*quick_tier=*/false));
}

}  // namespace awesim::bench
