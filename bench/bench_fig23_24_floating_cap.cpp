// Figs. 23 and 24: floating coupling capacitor (Fig. 22 = Fig. 16 plus
// C11 from the output into a victim branch).
//
// Reproduced content:
//   * the coupling slows the aggressor's 4.0 V threshold crossing
//     (paper: 1.6 ns -> 1.7 ns);
//   * the floating-cap path degrades the q=2 fit (paper: 0.15% -> 15%)
//     and q=3 restores it (paper: 0.14%);
//   * the charge dumped onto the victim (Fig. 24) integrates exactly --
//     m_0 matching makes the area under the voltage curve exact.
#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "circuits/paper_circuits.h"
#include "core/engine.h"
#include "sim/transient.h"

using namespace awesim;

int main() {
  bench::print_header("FIGS. 23/24",
                      "floating coupling capacitor (Fig. 22): aggressor "
                      "delay shift and victim charge dump");
  circuits::Drive drive;
  drive.rise_time = 1e-9;
  auto base = circuits::fig16_mos_interconnect(drive);
  auto ckt = circuits::fig22_floating_cap(drive);
  const auto n7 = ckt.find_node("n7");
  const auto n12 = ckt.find_node("n12");

  core::Engine engine(ckt);
  core::Engine engine_base(base);

  // --- Fig. 23: aggressor waveform, q=2 vs q=3.
  core::EngineOptions o2;
  o2.order = 2;
  const auto a2 = engine.approximate(n7, o2);
  core::EngineOptions o3;
  o3.order = 3;
  const auto a3 = engine.approximate(n7, o3);

  sim::TransientSimulator sim(ckt);
  sim::AdaptiveOptions aopt;
  aopt.tolerance = 1e-7;
  const double t_end = 10e-9;
  const auto ref7 = sim.run_adaptive({n7}, t_end, aopt);

  bench::print_waveform_comparison(
      ref7, "sim",
      {{"awe q=2", &a2.approximation}, {"awe q=3", &a3.approximation}},
      0.0, t_end, 21);

  const double threshold = 4.0;
  const auto base_r3 = engine_base.approximate(base.find_node("n7"), o3);
  const auto d_base =
      base_r3.approximation.first_crossing(threshold, 0.0, t_end);
  const auto d_coupled =
      a3.approximation.first_crossing(threshold, 0.0, t_end);
  const auto d_sim = ref7.first_crossing(threshold);
  std::printf("\n");
  if (d_base && d_coupled && d_sim) {
    bench::print_metric("4.0 V delay without coupling (AWE q=3)", *d_base,
                        "s");
    bench::print_metric("4.0 V delay with coupling (AWE q=3)", *d_coupled,
                        "s");
    bench::print_metric("4.0 V delay with coupling (sim)", *d_sim, "s");
    bench::print_metric("delay increase from coupling",
                        *d_coupled / *d_base);
  }
  bench::print_metric("measured aggressor error q=2 (paper: 15%)",
                      bench::measured_error(a2.approximation, ref7, 0.0,
                                            t_end));
  bench::print_metric("measured aggressor error q=3 (paper: 0.14%)",
                      bench::measured_error(a3.approximation, ref7, 0.0,
                                            t_end));

  // --- Fig. 24: victim charge dump.
  const auto v3 = engine.approximate(n12, o3);
  const double victim_end = 60e-9;
  const auto ref12 = sim.run_adaptive({n12}, victim_end, aopt);
  std::printf("\n[victim node n12 voltage (Fig. 24)]\n");
  bench::print_waveform_comparison(ref12, "sim",
                                   {{"awe q=3", &v3.approximation}}, 0.0,
                                   victim_end, 21);
  const auto awe12 = v3.approximation.sample(0.0, victim_end, 8001);
  std::printf("\n");
  bench::print_metric("victim peak voltage (sim)", ref12.max_value(), "V");
  bench::print_metric("victim peak voltage (AWE q=3)", awe12.max_value(),
                      "V");
  bench::print_metric("victim area integral (sim)", ref12.integral(),
                      "V*s");
  bench::print_metric("victim area integral (AWE q=3)", awe12.integral(),
                      "V*s");
  bench::print_metric("victim area, closed form from matched mu_0",
                      v3.approximation.settling_area(), "V*s");
  bench::print_note(
      "the three areas agree: m_0 matching makes the transferred charge "
      "exact, the paper's Fig. 24 observation");
  return 0;
}
