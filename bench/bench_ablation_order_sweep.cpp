// Ablation (Sections 3.4 and 4.4): order sweep on every paper circuit.
//
//   * "pole creep": higher orders creep up on the actual poles;
//   * the eq. 39 error estimate (q vs q+1) tracks the true error against
//     the simulator within about an order of magnitude;
//   * the paper's Cauchy-inequality bound (eq. 40-46) upper-bounds the
//     exact eq. 39 value.
#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "circuits/paper_circuits.h"
#include "core/engine.h"
#include "sim/transient.h"

using namespace awesim;

namespace {

void sweep(circuit::Circuit& ckt, const char* node, const char* name,
           double t_end, int max_q) {
  std::printf("\n[%s, output %s]\n", name, node);
  const auto out = ckt.find_node(node);
  core::Engine engine(ckt);
  sim::TransientSimulator sim(ckt);
  sim::AdaptiveOptions aopt;
  aopt.tolerance = 1e-7;
  const auto ref = sim.run_adaptive({out}, t_end, aopt);

  std::printf("%4s %6s %8s %14s %14s %14s %16s\n", "q", "used", "stable",
              "est(eq39)", "est(Cauchy)", "true vs sim",
              "|dom pole err|/|p|");
  const auto actual = engine.actual_poles();
  const double dominant = std::abs(actual.front());
  for (int q = 1; q <= max_q; ++q) {
    core::EngineOptions opt;
    opt.order = q;
    opt.degrade = false;  // the sweep reports raw per-order stability
    opt.preflight_lint = false;
    const auto r = engine.approximate(out, opt);
    core::EngineOptions copt = opt;
    copt.cauchy_error_bound = true;
    const auto rc = engine.approximate(out, copt);
    const double true_err =
        bench::measured_error(r.approximation, ref, 0.0, t_end);
    double dom_err = std::numeric_limits<double>::quiet_NaN();
    for (const auto& atom : r.approximation.atoms()) {
      for (const auto& t : atom.terms) {
        const double e = std::abs(t.pole - actual.front()) / dominant;
        if (std::isnan(dom_err) || e < dom_err) dom_err = e;
      }
    }
    std::printf("%4d %6d %8s %14.4g %14.4g %14.4g %16.4g\n", q,
                r.order_used, r.stable ? "yes" : "NO", r.error_estimate,
                rc.error_estimate, true_err, dom_err);
  }
}

}  // namespace

int main() {
  bench::print_header("ABLATION: ORDER SWEEP",
                      "error estimators and pole creep across orders");
  {
    auto ckt = circuits::fig4_rc_tree();
    sweep(ckt, "n4", "Fig. 4 RC tree, step", 4e-3, 4);
  }
  {
    circuits::Drive d;
    d.rise_time = 1e-9;
    auto ckt = circuits::fig16_mos_interconnect(d);
    sweep(ckt, "n7", "Fig. 16 stiff tree, 1 ns ramp", 8e-9, 5);
  }
  {
    auto ckt = circuits::fig25_rlc_ladder();
    sweep(ckt, "n3", "Fig. 25 RLC ladder, step", 6e-9, 6);
  }
  bench::print_note(
      "the Cauchy column upper-bounds the eq. 39 column; both track the "
      "true error; the last column shows the dominant pole creeping onto "
      "the actual value as q grows");
  return 0;
}
