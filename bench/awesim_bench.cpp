// The unified benchmark runner.
//
//   awesim_bench                 run the full tier, human table only
//   awesim_bench --quick         the CI tier (fewer repeats, big cases
//                                skipped)
//   awesim_bench --json[=path]   additionally write BENCH_results.json
//                                (schema-validated before exiting 0)
//   awesim_bench --list          print the registered cases and exit
//   awesim_bench --filter=sub    run only cases whose name contains sub
//   awesim_bench --repeats=N     override the tier's repeat count
//
// Tracing is force-enabled for the run so every result carries the
// phase breakdown; the timed workloads therefore pay the (mutexed
// accumulate) tracing cost uniformly, which is what makes phase shares
// comparable across benches.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "cases.h"
#include "harness.h"
#include "obs/json.h"
#include "obs/trace.h"

using namespace awesim;

namespace {

struct CliOptions {
  bench::RunOptions run;
  bool list = false;
  bool json = false;
  std::string json_path = "BENCH_results.json";
  std::string filter;
};

bool parse_args(int argc, char** argv, CliOptions* cli) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      cli->run.quick = true;
    } else if (arg == "--list") {
      cli->list = true;
    } else if (arg == "--json") {
      cli->json = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      cli->json = true;
      cli->json_path = arg.substr(7);
    } else if (arg.rfind("--filter=", 0) == 0) {
      cli->filter = arg.substr(9);
    } else if (arg.rfind("--repeats=", 0) == 0) {
      cli->run.repeats = std::atoi(arg.c_str() + 10);
      if (cli->run.repeats <= 0) {
        std::fprintf(stderr, "awesim_bench: bad --repeats value '%s'\n",
                     arg.c_str() + 10);
        return false;
      }
    } else {
      std::fprintf(stderr, "awesim_bench: unknown flag '%s'\n",
                   arg.c_str());
      return false;
    }
  }
  return true;
}

void print_results(const std::vector<bench::BenchResult>& results) {
  std::printf("%-26s %-22s %8s %10s %10s %12s %12s  %s\n", "bench",
              "paper_ref", "size", "wall_ms", "min_ms", "speedup", "accuracy",
              "metric");
  for (const auto& r : results) {
    const double speedup = bench::speedup_vs_sim(r);
    char speedup_str[32];
    if (std::isfinite(speedup)) {
      std::snprintf(speedup_str, sizeof speedup_str, "%.1fx", speedup);
    } else {
      std::snprintf(speedup_str, sizeof speedup_str, "-");
    }
    char acc_str[32];
    if (std::isfinite(r.accuracy)) {
      std::snprintf(acc_str, sizeof acc_str, "%.3e", r.accuracy);
    } else {
      std::snprintf(acc_str, sizeof acc_str, "-");
    }
    std::printf("%-26s %-22s %8zu %10.3f %10.3f %12s %12s  %s\n",
                r.name.c_str(), r.paper_ref.c_str(), r.problem_size,
                bench::median_of(r.wall_ms), bench::min_of(r.wall_ms),
                speedup_str, acc_str,
                r.accuracy_metric.empty() ? "-"
                                          : r.accuracy_metric.c_str());
  }
}

void print_phase_totals(const std::vector<bench::BenchResult>& results) {
  obs::PhaseBreakdown merged;
  for (const auto& r : results) obs::merge_into(merged, r.phases);
  if (merged.empty()) return;
  std::printf("\naggregate phase breakdown (timed AWE windows only):\n");
  std::printf("  %-18s %10s %12s %12s %12s\n", "phase", "count",
              "total_ms", "min_us", "max_us");
  for (const auto& p : merged) {
    std::printf("  %-18s %10llu %12.3f %12.3f %12.3f\n", p.name.c_str(),
                static_cast<unsigned long long>(p.stats.count),
                p.stats.total_seconds * 1e3, p.stats.min_seconds * 1e6,
                p.stats.max_seconds * 1e6);
  }
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  if (!parse_args(argc, argv, &cli)) return 2;

  bench::ensure_all_registered();

  if (cli.list) {
    for (const auto& c : bench::registry()) {
      std::printf("%-26s %-22s size=%zu%s\n", c.name.c_str(),
                  c.paper_ref.c_str(), c.problem_size,
                  c.quick_tier ? "" : "  [full tier only]");
    }
    return 0;
  }

  // Every result carries the phase breakdown.
  obs::set_tracing(true);

  std::vector<bench::BenchResult> results;
  for (const auto& c : bench::registry()) {
    if (cli.run.quick && !c.quick_tier) continue;
    if (!cli.filter.empty() &&
        c.name.find(cli.filter) == std::string::npos) {
      continue;
    }
    std::printf("running %-26s ...\n", c.name.c_str());
    std::fflush(stdout);
    results.push_back(bench::run_case(c, cli.run));
  }
  if (results.empty()) {
    std::fprintf(stderr, "awesim_bench: no cases matched\n");
    return 1;
  }

  std::printf("\n");
  print_results(results);
  print_phase_totals(results);

  // Coverage floor (skipped for filtered runs, which are exploratory):
  // the results file must cover the figure reproductions and at least
  // one speedup-vs-simulation measurement to be a useful trajectory
  // point.
  if (cli.filter.empty()) {
    bool has_speedup = false;
    for (const auto& r : results) {
      if (std::isfinite(bench::speedup_vs_sim(r))) has_speedup = true;
    }
    if (results.size() < 6 || !has_speedup) {
      std::fprintf(stderr,
                   "awesim_bench: coverage floor violated (%zu benches, "
                   "speedup_vs_sim %s)\n",
                   results.size(), has_speedup ? "present" : "missing");
      return 1;
    }
  }

  if (cli.json) {
    const obs::json::Value doc = bench::to_json(results, cli.run);
    const std::string text = doc.dump(2);
    {
      std::ofstream out(cli.json_path, std::ios::binary);
      if (!out) {
        std::fprintf(stderr, "awesim_bench: cannot write '%s'\n",
                     cli.json_path.c_str());
        return 1;
      }
      out << text << "\n";
    }
    // Self-check: re-parse the emitted bytes and validate the schema,
    // so a writer regression fails the run instead of shipping an
    // unreadable artifact.
    std::vector<std::string> errors;
    try {
      errors = bench::validate_schema(obs::json::parse(text));
    } catch (const std::exception& e) {
      errors.push_back(std::string("re-parse failed: ") + e.what());
    }
    if (!errors.empty()) {
      for (const auto& e : errors) {
        std::fprintf(stderr, "awesim_bench: schema error: %s\n",
                     e.c_str());
      }
      return 1;
    }
    std::printf("\nwrote %s (%zu benches, schema v%d, validated)\n",
                cli.json_path.c_str(), results.size(),
                bench::kSchemaVersion);
  }
  return 0;
}
