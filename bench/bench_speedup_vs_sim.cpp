// Section I claim: RC-tree-style timing estimation runs "faster than
// 1000x the speed" of a SPICE-level simulation at comparable usefulness
// for delay estimation.
//
// This bench times AWE (order 3, no error estimation -- the production
// configuration of a timing analyzer) against the reference transient
// simulator on uniform RC lines of growing size, and prints the speedup
// and the agreement of the 50% delay estimate.  Also timed: the O(n)
// tree-walk Elmore path (the "first-order AWE without any factorization"
// of Section IV).
#include <cstdio>
#include <optional>

#include "bench_common.h"
#include "circuits/paper_circuits.h"
#include "core/engine.h"
#include "harness.h"
#include "rctree/rctree.h"
#include "sim/transient.h"

using namespace awesim;
using bench::time_ms_best;

int main() {
  bench::print_header("SPEEDUP",
                      "AWE vs transient simulation on uniform RC lines "
                      "(the Section I 1000x claim)");
  std::printf("%8s %12s %12s %12s %10s %12s %14s %14s\n", "nodes",
              "elmore_ms", "awe_ms", "sim_ms", "awe_vs_sim",
              "elmore_vs_sim", "delay_awe", "delay_sim");

  for (std::size_t n : {20, 50, 100, 200, 400, 1000, 2000}) {
    auto ckt = circuits::rc_line(n, 1e3 * static_cast<double>(n),
                                 1e-12 * static_cast<double>(n));
    const auto out = ckt.find_node("n" + std::to_string(n));

    // Tree-walk Elmore (no factorization at all).
    const auto tree = rctree::extract(ckt);
    double elmore = 0.0;
    const double t_elmore = time_ms_best(
        [&] {
          const auto d = rctree::elmore_delays(*tree);
          elmore = d.back();
        },
        5);

    // AWE q=3.
    std::optional<double> delay_awe;
    const double horizon = 10.0 * elmore;
    const double t_awe = time_ms_best(
        [&] {
          core::Engine engine(ckt);
          core::EngineOptions opt;
          opt.order = 3;
          opt.estimate_error = false;
          opt.jump_consistent = false;
          const auto r = engine.approximate(out, opt);
          delay_awe = r.approximation.first_crossing(2.5, 0.0, horizon);
        },
        3);

    // Reference simulation at matched usefulness: fixed-step trapezoidal
    // with 2000 steps over the transient window (a coarse but usable
    // SPICE-style run; the adaptive reference would be slower still).
    std::optional<double> delay_sim;
    const double t_sim = time_ms_best(
        [&] {
          sim::TransientSimulator sim(ckt);
          sim::TransientOptions sopt;
          sopt.timestep = horizon / 2000.0;
          const auto w = sim.run({out}, horizon, sopt);
          delay_sim = w.first_crossing(2.5);
        },
        3);

    std::printf("%8zu %12.4f %12.3f %12.3f %9.1fx %11.0fx %14.4e %14.4e\n",
                n, t_elmore, t_awe, t_sim, t_sim / t_awe,
                t_sim / std::max(t_elmore, 1e-6),
                delay_awe.value_or(-1.0), delay_sim.value_or(-1.0));
  }
  bench::print_note(
      "AWE includes the full MNA stamp + LU in its time; the simulator "
      "pays the same factorization plus thousands of substitution steps. "
      "The tree-walk column is the Section IV O(n) special path.");
  return 0;
}
