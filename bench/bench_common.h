// Shared table/waveform printing for the per-figure benchmark binaries.
//
// Every bench regenerates one table or figure of the paper and prints it
// in a stable, diffable text format: a header naming the experiment, the
// series the figure plots (sampled), and the summary metrics the paper
// quotes (error terms, delays, pole lists).
#pragma once

#include <complex>
#include <cstdio>
#include <string>
#include <vector>

#include "core/engine.h"
#include "la/matrix.h"
#include "waveform/waveform.h"

namespace awesim::bench {

inline void print_header(const std::string& id, const std::string& what) {
  std::printf("\n==============================================================\n");
  std::printf("%s -- %s\n", id.c_str(), what.c_str());
  std::printf("==============================================================\n");
}

/// Print a complex pole in the paper's "re  im j" style.
inline std::string pole_str(la::Complex p) {
  char buf[64];
  if (p.imag() == 0.0) {
    std::snprintf(buf, sizeof buf, "%12.4e", p.real());
  } else {
    std::snprintf(buf, sizeof buf, "%12.4e %+.4ej", p.real(), p.imag());
  }
  return buf;
}

/// Print aligned pole columns (Table I / Table II style).  Columns may
/// have different lengths; missing entries print blank.
inline void print_pole_table(const std::vector<std::string>& headers,
                             const std::vector<la::ComplexVector>& columns) {
  for (const auto& h : headers) std::printf("%-28s", h.c_str());
  std::printf("\n");
  std::size_t rows = 0;
  for (const auto& c : columns) rows = std::max(rows, c.size());
  for (std::size_t r = 0; r < rows; ++r) {
    for (const auto& c : columns) {
      std::printf("%-28s",
                  r < c.size() ? pole_str(c[r]).c_str() : "");
    }
    std::printf("\n");
  }
}

/// Print a figure as columns: t, reference (simulator), then one column
/// per approximation.  `rows` evenly spaced samples.
inline void print_waveform_comparison(
    const waveform::Waveform& reference, const std::string& ref_name,
    const std::vector<std::pair<std::string, const core::Approximation*>>&
        approximations,
    double t0, double t1, int rows) {
  std::printf("%14s  %12s", "t", ref_name.c_str());
  for (const auto& [name, unused] : approximations) {
    std::printf("  %12s", name.c_str());
  }
  std::printf("\n");
  for (int i = 0; i < rows; ++i) {
    const double t = t0 + (t1 - t0) * i / (rows - 1);
    std::printf("%14.5e  %12.6f", t, reference.value_at(t));
    for (const auto& [name, approx] : approximations) {
      std::printf("  %12.6f", approx->value(t));
    }
    std::printf("\n");
  }
}

/// Relative L2 error of an approximation against the reference over
/// [t0, t1] (the measured analogue of the paper's error term).
inline double measured_error(const core::Approximation& approx,
                             const waveform::Waveform& reference, double t0,
                             double t1) {
  const auto wave = approx.sample(t0, t1, 2001);
  return wave.relative_error_vs(reference);
}

inline void print_metric(const std::string& name, double value,
                         const std::string& unit = "") {
  std::printf("  %-46s %.6g %s\n", (name + ":").c_str(), value,
              unit.c_str());
}

inline void print_note(const std::string& text) {
  std::printf("  note: %s\n", text.c_str());
}

}  // namespace awesim::bench
