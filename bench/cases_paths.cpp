// Path-query cases of the unified runner -- the SFXT-style K-worst
// enumeration over the timing graph:
//
//   * paths.kworst_1000: the 1000 worst paths of a layered DAG with a
//     few hundred thousand distinct source-to-endpoint paths.  The
//     timed workload is TimingGraph::build plus the best-first search
//     (suffix bounds, lazy expansion); the reference is a fresh second
//     run, and accuracy is the max bitwise deviation between the two --
//     the determinism contract, measured rather than assumed.
#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "cases.h"
#include "harness.h"
#include "timing/graph.h"
#include "timing/paths.h"

namespace awesim::bench {

namespace {

// A layered stage DAG with dense fan-out, synthesized directly as a
// TimingReport (the path engine consumes reports; no circuit solves
// belong in this measurement).  Layer l gate g is "L<l>G<g>"; every
// gate drives three gates of the next layer, the last layer drives
// ports.  Delays are a deterministic arithmetic pattern -- distinct
// everywhere so path ordering is nontrivial.
timing::TimingReport layered_report(std::size_t layers, std::size_t width) {
  timing::TimingReport report;
  auto gate_name = [](std::size_t l, std::size_t g) {
    return "L" + std::to_string(l) + "G" + std::to_string(g);
  };
  for (std::size_t g = 0; g < width; ++g) {
    report.gate_arrival[gate_name(0, g)] = 0.0;
    report.source_gates.push_back(gate_name(0, g));
  }
  double tick = 1e-12;
  for (std::size_t l = 0; l + 1 < layers; ++l) {
    for (std::size_t g = 0; g < width; ++g) {
      timing::StageTiming stage;
      stage.driver_gate = gate_name(l, g);
      stage.net = "n_" + stage.driver_gate;
      for (std::size_t f = 0; f < 3; ++f) {
        timing::SinkTiming sink;
        sink.gate = gate_name(l + 1, (g + f) % width);
        sink.stage_delay = tick;
        tick += 1e-12;
        stage.sinks.push_back(sink);
      }
      report.stages.push_back(std::move(stage));
    }
  }
  for (std::size_t g = 0; g < width; ++g) {
    timing::StageTiming stage;
    stage.driver_gate = gate_name(layers - 1, g);
    stage.net = "n_out" + std::to_string(g);
    timing::SinkTiming sink;
    sink.gate = "PO" + std::to_string(g);
    sink.stage_delay = tick;
    tick += 1e-12;
    stage.sinks.push_back(sink);
    report.stages.push_back(std::move(stage));
  }
  // Forward-propagate arrivals so the report is self-consistent.  The
  // stages were emitted in layer order, so one in-order pass settles
  // every gate (ports are not gates and get no map entry -- the graph
  // computes their arrivals itself).
  for (std::size_t l = 1; l < layers; ++l) {
    for (std::size_t g = 0; g < width; ++g) {
      report.gate_arrival[gate_name(l, g)] = 0.0;
    }
  }
  for (const timing::StageTiming& stage : report.stages) {
    for (const timing::SinkTiming& sink : stage.sinks) {
      const auto to = report.gate_arrival.find(sink.gate);
      if (to == report.gate_arrival.end()) continue;  // port sink
      to->second =
          std::max(to->second,
                   report.gate_arrival.at(stage.driver_gate) +
                       sink.stage_delay);
    }
  }
  return report;
}

struct PathsState {
  timing::TimingReport report;
  timing::PathQuery query;
  timing::PathsResult run_result;
  timing::PathsResult ref_result;
};

BenchCase kworst_case() {
  constexpr std::size_t kPaths = 1000;
  BenchCase bc;
  bc.name = "paths.kworst_" + std::to_string(kPaths);
  bc.paper_ref = "Section II (timing analysis)";
  bc.accuracy_metric = "arrival_abs_dev_rerun_s";
  bc.problem_size = kPaths;
  bc.prepare = [] {
    auto state = std::make_shared<PathsState>();
    state->report = layered_report(/*layers=*/12, /*width=*/16);
    state->query.k = kPaths;
    PreparedCase p;
    p.run = [state] {
      const timing::TimingGraph graph =
          timing::TimingGraph::build(state->report);
      state->run_result = timing::k_worst_paths(graph, state->query);
    };
    p.reference = [state] {
      const timing::TimingGraph graph =
          timing::TimingGraph::build(state->report);
      state->ref_result = timing::k_worst_paths(graph, state->query);
    };
    p.accuracy = [state]() -> double {
      const auto& a = state->run_result.paths;
      const auto& b = state->ref_result.paths;
      if (a.size() != kPaths || b.size() != kPaths) {
        return std::numeric_limits<double>::quiet_NaN();
      }
      double max_dev = 0.0;
      for (std::size_t i = 0; i < a.size(); ++i) {
        max_dev =
            std::max(max_dev, std::abs(a[i].arrival - b[i].arrival));
        if (a[i].arcs != b[i].arcs) {
          return std::numeric_limits<double>::quiet_NaN();
        }
      }
      return max_dev;
    };
    return p;
  };
  return bc;
}

}  // namespace

void register_paths_cases() { register_bench(kworst_case()); }

}  // namespace awesim::bench
