// Registration entry points for the unified `awesim_bench` runner.  The
// harness lives in a static library, so each translation unit of cases
// exposes an explicit registration function instead of relying on static
// initializers the linker may drop.
#pragma once

#include <mutex>

namespace awesim::bench {

/// The per-figure step-response reproductions (Figs. 7, 15, 17, 26).
void register_figure_cases();

/// The scaling/amortization cases: the Section I speedup-vs-simulation
/// RC lines, the 32-sink batch net, the parallel timing wavefront.
void register_scaling_cases();

/// The incremental what-if sweeps: timing::Session warm re-analysis
/// against cold per-point Design::analyze.
void register_sweep_cases();

/// The timing-graph path queries: K-worst enumeration determinism and
/// throughput.
void register_paths_cases();

/// The service-layer throughput cases: an in-process serve::Server on
/// loopback TCP under 1/8/32 concurrent clients (qps, p50/p99 latency).
void register_serve_cases();

/// The hierarchical-reduction cases: the 10k-node accuracy control and
/// the full-tier 1M-node speedup row (cold collapse + stitched
/// analysis vs the flat analyzer).
void register_reduce_cases();

/// The static-audit case: the three-tier design audit timed against the
/// cold analysis it pre-flights (the near-free contract).
void register_audit_cases();

/// Idempotent: registers every case exactly once.
inline void ensure_all_registered() {
  static std::once_flag once;
  std::call_once(once, [] {
    register_figure_cases();
    register_scaling_cases();
    register_sweep_cases();
    register_paths_cases();
    register_serve_cases();
    register_reduce_cases();
    register_audit_cases();
  });
}

}  // namespace awesim::bench
