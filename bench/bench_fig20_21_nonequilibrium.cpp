// Figs. 20 and 21: nonequilibrium initial conditions (v_C6(0) = 5 V) on
// the Fig. 16 tree produce a nonmonotone response that a single
// exponential cannot represent.
//
// Reproduced content: the q=1 model misses the charge-sharing dip
// entirely (paper error term: 150%); q=2 captures it (paper: 0.65%); the
// moments are functions of the initial state, so the dominant poles shift
// with the IC (Section 5.2, Table I right half).
#include <cstdio>

#include "bench_common.h"
#include "circuits/paper_circuits.h"
#include "core/engine.h"
#include "sim/transient.h"

using namespace awesim;

int main() {
  bench::print_header("FIGS. 20/21",
                      "nonequilibrium IC (v_C6(0)=5 V), 1 ns input slope, "
                      "voltage at the disturbed node C6");
  circuits::Drive drive;
  drive.rise_time = 1e-9;
  auto ckt = circuits::fig16_mos_interconnect(drive, 5.0);
  const auto out = ckt.find_node("n6");
  core::Engine engine(ckt);

  core::EngineOptions o1;
  o1.order = 1;
  o1.degrade = false;  // this experiment studies the raw (in)stability
  o1.preflight_lint = false;
  const auto r1 = engine.approximate(out, o1);
  core::EngineOptions o2;
  o2.order = 2;
  o2.degrade = false;
  o2.preflight_lint = false;
  const auto r2 = engine.approximate(out, o2);

  sim::TransientSimulator sim(ckt);
  sim::AdaptiveOptions aopt;
  aopt.tolerance = 1e-6;
  const double t_end = 8e-9;
  const auto ref = sim.run_adaptive({out}, t_end, aopt);

  bench::print_waveform_comparison(
      ref, "sim",
      {{"awe q=1", &r1.approximation}, {"awe q=2", &r2.approximation}},
      0.0, t_end, 26);

  // Dip depth: the nonmonotonicity the paper demonstrates.
  double running_max = -1e300;
  double dip = 0.0;
  for (int i = 0; i <= 2000; ++i) {
    const double v = ref.value_at(t_end * i / 2000.0);
    running_max = std::max(running_max, v);
    dip = std::max(dip, running_max - v);
  }
  std::printf("\n");
  bench::print_metric("simulated dip depth (nonmonotone)", dip, "V");
  bench::print_metric("measured error q=1 (paper: 150%)",
                      bench::measured_error(r1.approximation, ref, 0.0,
                                            t_end));
  bench::print_metric("measured error q=2 (paper: 0.65%)",
                      bench::measured_error(r2.approximation, ref, 0.0,
                                            t_end));
  bench::print_metric("q=2 stable", r2.stable ? 1.0 : 0.0);
  std::printf("  q=2 poles (IC-dependent, cf. Table I):\n");
  for (const auto& atom : r2.approximation.atoms()) {
    for (const auto& t : atom.terms) {
      std::printf("    %s\n", bench::pole_str(t.pole).c_str());
    }
    if (!atom.terms.empty()) break;
  }
  return 0;
}
