// Section IV ablation: moment generation via tree/link analysis (the
// paper's formulation -- explicit tree walks, no LU at all for RC trees)
// versus the general MNA + LU route.
//
// Reproduced content: "for several interconnect circuit models, RC trees
// included, the LU factors need not be found at all"; the grounded
// resistor adds exactly one link unknown and keeps the moment cost linear
// (eqs. 51-62).
#include <cstdio>

#include "bench_common.h"
#include "circuits/paper_circuits.h"
#include "core/moments.h"
#include "harness.h"
#include "mna/system.h"
#include "rctree/rctree.h"
#include "treelink/treelink.h"

using namespace awesim;
using bench::time_ms_best;

int main() {
  bench::print_header("ABLATION: TREE/LINK MOMENTS",
                      "Section IV formulation vs MNA+LU for the first 8 "
                      "moments of random RC trees");
  std::printf("%8s %8s %14s %14s %10s\n", "nodes", "links",
              "treelink (ms)", "mna+lu (ms)", "ratio");
  for (std::size_t n : {50, 200, 800, 3000}) {
    auto tree = rctree::random_tree(n, 1234 + n);
    auto ckt =
        rctree::to_circuit(tree, circuit::Stimulus::step(0.0, 5.0));
    treelink::TreeLinkSystem tl(ckt);

    double checksum = 0.0;
    const double t_tl = time_ms_best(
        [&] {
          treelink::TreeLinkSystem sys(ckt);
          const auto mus = sys.moments(9);
          checksum += mus.back()[0];
        },
        3);
    const double t_mna = time_ms_best(
        [&] {
          mna::MnaSystem mna(ckt);
          la::RealVector xh0(mna.dim(), 0.0);
          const auto xb = mna.solve(mna.rhs_at(1e30));
          for (std::size_t i = 0; i < xh0.size(); ++i) xh0[i] = -xb[i];
          core::MomentSequence seq(mna, xh0);
          checksum += seq.mu(7)[0];
        },
        3);
    std::printf("%8zu %8zu %14.3f %14.3f %9.1fx\n", n, tl.link_unknowns(),
                t_tl, t_mna, t_mna / t_tl);
    if (checksum == 12345.0) std::printf("!");  // defeat optimizer
  }

  // The grounded-resistor case: one link unknown, still linear.
  {
    auto ckt = circuits::fig9_grounded_resistor();
    treelink::TreeLinkSystem tl(ckt);
    std::printf("\n");
    bench::print_metric("fig9 grounded-resistor link unknowns",
                        static_cast<double>(tl.link_unknowns()));
    bench::print_note(
        "RC trees: zero link unknowns, every moment is a pure O(n) tree "
        "walk; the grounded resistor costs exactly one extra unknown, as "
        "the paper derives");
  }
  return 0;
}
