// Ablation (Section 3.5): frequency scaling of the moments.
//
// Without eq. 47's scaling the Hankel matrix of a stiff circuit becomes
// numerically singular after a couple of orders; with it, the usable
// order keeps climbing.  This bench sweeps the requested order on the
// stiff Fig. 16 tree and on a synthetic very-stiff RC line and reports
// the order actually delivered and the match residual, with scaling on
// and off.
#include <cstdio>

#include "bench_common.h"
#include "circuits/paper_circuits.h"
#include "core/engine.h"

using namespace awesim;

namespace {

void sweep(circuit::Circuit& ckt, circuit::NodeId out, const char* name) {
  std::printf("\n[%s]\n", name);
  std::printf("%10s %18s %18s %18s %18s\n", "order q", "used (scaled)",
              "residual (scaled)", "used (unscaled)", "residual (unscaled)");
  core::Engine engine(ckt);
  for (int q = 1; q <= 8; ++q) {
    core::EngineOptions on;
    on.order = q;
    on.estimate_error = false;
    core::EngineOptions off = on;
    off.frequency_scaling = false;
    const auto r_on = engine.approximate(out, on);
    const auto r_off = engine.approximate(out, off);
    const auto& m_on = r_on.approximation.atoms()[1].match;
    const auto& m_off = r_off.approximation.atoms()[1].match;
    std::printf("%10d %18d %18.3e %18d %18.3e\n", q, m_on.order_used,
                m_on.moment_residual, m_off.order_used,
                m_off.moment_residual);
  }
}

}  // namespace

int main() {
  bench::print_header("ABLATION: FREQUENCY SCALING",
                      "usable approximation order with and without eq. 47 "
                      "moment scaling");
  {
    auto ckt = circuits::fig16_mos_interconnect();
    sweep(ckt, ckt.find_node("n7"), "stiff MOS tree (Fig. 16), step input");
  }
  {
    // Very stiff synthetic line: section RC products spread over ~5
    // decades by construction.
    auto ckt = circuits::rc_line(12, 1.2e4, 1.2e-11);
    // Make it stiff: shrink a few caps drastically by layering a tiny
    // extra RC at the head (the construction above is uniform, so add a
    // very fast pole by a small cap close to the source).
    const auto n1 = ckt.find_node("n1");
    const auto fast = ckt.node("fast");
    ckt.add_resistor("Rf", n1, fast, 0.5);
    ckt.add_capacitor("Cf", fast, circuit::kGround, 1e-17);
    sweep(ckt, ckt.find_node("n12"), "RC line with attached fast pole");
  }
  bench::print_note(
      "'used' is the order the Hankel rank test delivered; when scaling "
      "is off the moment matrix collapses earlier and the order saturates");
  return 0;
}
