// Batch multi-output AWE and the parallel timing wavefront.
//
// The paper's central cost argument (Fig. 19) is that one LU
// factorization amortizes over 2q-1 forward/back substitutions.  The
// batch API extends the same amortization across observation points: the
// atom problems and full-state moment vectors are output-independent, so
// a 32-sink net needs the circuit-level work once and only the q x q
// Hankel/root/Vandermonde match per sink.  This bench demonstrates:
//
//   * >= 3x speedup of one Engine::approximate_all over 32 per-output
//     pipelines (fresh Engine + approximate per sink), with the Stats
//     counters showing where the work went;
//   * the levelized timing analyzer's parallel wavefront against the
//     serial walk (threads = 1), with identical reports.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "circuit/circuit.h"
#include "core/engine.h"
#include "core/parallel.h"
#include "harness.h"
#include "timing/analyzer.h"

using namespace awesim;
using bench::seconds_since;

namespace {

constexpr std::size_t kSinks = 32;

// A 32-sink interconnect comb: a resistive spine with one RC branch and
// one loaded sink tap per section -- the multi-sink net shape a clock or
// high-fanout signal distribution produces.
circuit::Circuit comb_net(std::vector<circuit::NodeId>& sinks) {
  circuit::Circuit ckt;
  const auto vin = ckt.node("in");
  ckt.add_vsource("Vdrv", vin, circuit::kGround,
                  circuit::Stimulus::ramp_step(0.0, 5.0, 0.1e-9));
  auto spine = ckt.node("s0");
  ckt.add_resistor("Rdrv", vin, spine, 200.0);
  for (std::size_t i = 0; i < kSinks; ++i) {
    const std::string tag = std::to_string(i);
    const auto next = ckt.node("s" + std::to_string(i + 1));
    ckt.add_resistor("Rs" + tag, spine, next, 40.0);
    ckt.add_capacitor("Cs" + tag, next, circuit::kGround, 8e-15);
    const auto sink = ckt.node("t" + tag);
    ckt.add_resistor("Rt" + tag, next, sink, 120.0);
    ckt.add_capacitor("Ct" + tag, sink, circuit::kGround, 12e-15);
    sinks.push_back(sink);
    spine = next;
  }
  return ckt;
}

// A wide gate-level design: `chains` parallel 4-stage chains fanning out
// of one root driver, so every wavefront past the first holds `chains`
// independent stages.
timing::Design wide_design(std::size_t chains) {
  timing::Design d;
  d.add_gate({"root", 500.0, 4e-15, 0.0});
  d.set_primary_input("root");
  timing::Net fan;
  fan.name = "fanout";
  fan.parasitics = {{timing::NetElement::Kind::Resistor, "DRV", "h", 150.0},
                    {timing::NetElement::Kind::Capacitor, "h", "0", 20e-15}};
  for (std::size_t c = 0; c < chains; ++c) {
    fan.sink_node["g" + std::to_string(c) + "_0"] = "h";
  }
  for (std::size_t c = 0; c < chains; ++c) {
    for (int s = 0; s < 4; ++s) {
      const std::string name =
          "g" + std::to_string(c) + "_" + std::to_string(s);
      d.add_gate({name, 800.0 + 60.0 * static_cast<double>(c), 5e-15,
                  5e-12});
      if (s > 0) {
        timing::Net net;
        net.name = name + "_in";
        net.parasitics = {
            {timing::NetElement::Kind::Resistor, "DRV", "w",
             300.0 + 25.0 * static_cast<double>(s)},
            {timing::NetElement::Kind::Capacitor, "w", "0", 30e-15}};
        net.sink_node[name] = "w";
        d.add_net("g" + std::to_string(c) + "_" + std::to_string(s - 1),
                  net);
      }
    }
  }
  d.add_net("root", fan);
  return d;
}

}  // namespace

int main() {
  bench::print_header("BATCH MULTI-SINK",
                      "one LU + moment set amortized over 32 sinks, and "
                      "the parallel timing wavefront");

  core::EngineOptions eopt;
  eopt.order = 3;

  // Warm up allocators/caches once so the timed loops compare fairly.
  {
    std::vector<circuit::NodeId> sinks;
    auto ckt = comb_net(sinks);
    core::Engine warm(ckt);
    (void)warm.approximate(sinks.front(), eopt);
  }

  // --- Per-output baseline: a fresh pipeline per sink, i.e. what a
  // caller without the batch API pays (LU + particular solutions +
  // moment recursion re-done 32 times).
  constexpr int kRepeats = 20;
  double t_single = 1e300;
  core::Stats single_stats;
  std::vector<core::Result> single_results;
  for (int rep = 0; rep < kRepeats; ++rep) {
    std::vector<circuit::NodeId> sinks;
    auto ckt = comb_net(sinks);
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<core::Result> results;
    core::Stats stats;
    for (const auto sink : sinks) {
      core::Engine engine(ckt);
      results.push_back(engine.approximate(sink, eopt));
      stats += engine.stats();
    }
    const double dt = seconds_since(t0);
    if (dt < t_single) {
      t_single = dt;
      single_stats = stats;
      single_results = std::move(results);
    }
  }

  // --- Batch: one engine, one approximate_all over all 32 sinks.
  double t_batch = 1e300;
  core::Stats batch_stats;
  std::vector<core::Result> batch_results;
  for (int rep = 0; rep < kRepeats; ++rep) {
    std::vector<circuit::NodeId> sinks;
    auto ckt = comb_net(sinks);
    const auto t0 = std::chrono::steady_clock::now();
    core::Engine engine(ckt);
    auto batch = engine.approximate_all(sinks, eopt);
    const double dt = seconds_since(t0);
    if (dt < t_batch) {
      t_batch = dt;
      batch_stats = batch.stats;
      batch_results = std::move(batch.results);
    }
  }

  double max_dev = 0.0;
  for (std::size_t i = 0; i < kSinks; ++i) {
    const auto& a = single_results[i].approximation;
    const auto& b = batch_results[i].approximation;
    for (int k = 0; k <= 50; ++k) {
      const double t = 2e-9 * k / 50.0;
      max_dev = std::max(max_dev, std::abs(a.value(t) - b.value(t)));
    }
  }

  std::printf("\n[32-sink comb net, q=%d]\n", eopt.order);
  bench::print_metric("32 per-output pipelines", t_single * 1e3, "ms");
  std::printf("    %s\n", single_stats.summary().c_str());
  bench::print_metric("one approximate_all batch", t_batch * 1e3, "ms");
  std::printf("    %s\n", batch_stats.summary().c_str());
  bench::print_metric("speedup (>= 3 required)", t_single / t_batch, "x");
  bench::print_metric("max |batch - per-output| over waveforms", max_dev,
                      "V");

  // --- Parallel analyzer: serial walk vs one thread per core.
  const std::size_t chains = 16;
  timing::Design design = wide_design(chains);
  timing::AnalysisOptions serial_opt;
  serial_opt.threads = 1;
  timing::AnalysisOptions parallel_opt;
  parallel_opt.threads = 0;  // hardware

  // Warm-up + reference run.
  auto serial = design.analyze(serial_opt);
  double t_serial = 1e300;
  double t_parallel = 1e300;
  for (int rep = 0; rep < 5; ++rep) {
    auto s = design.analyze(serial_opt);
    t_serial = std::min(t_serial, s.wall_seconds);
    auto p = design.analyze(parallel_opt);
    t_parallel = std::min(t_parallel, p.wall_seconds);
    if (rep == 0) {
      const bool same =
          s.critical_delay == p.critical_delay &&
          s.gate_arrival == p.gate_arrival &&
          s.critical_path == p.critical_path;
      bench::print_metric("parallel == serial report", same ? 1.0 : 0.0);
    }
  }

  std::printf("\n[timing wavefront, %zu chains x 4 stages, %zu levels]\n",
              chains, serial.levels);
  bench::print_metric("stages", static_cast<double>(serial.stages.size()));
  std::printf("    %s\n", serial.awe_stats.summary().c_str());
  bench::print_metric("serial walk (threads=1)", t_serial * 1e3, "ms");
  bench::print_metric(
      "parallel wavefront (threads=" +
          std::to_string(core::ThreadPool::hardware_threads()) + ")",
      t_parallel * 1e3, "ms");
  bench::print_metric("analyzer speedup", t_serial / t_parallel, "x");

  const bool ok = t_single / t_batch >= 3.0 && max_dev == 0.0;
  std::printf("\n%s\n", ok ? "PASS: batch speedup >= 3x with identical "
                             "waveforms"
                           : "FAIL: batch speedup below 3x or waveforms "
                             "deviate");
  return ok ? 0 : 1;
}
