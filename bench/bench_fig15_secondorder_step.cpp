// Fig. 15: second-order AWE step response for the Fig. 4 tree.
//
// Reproduced content: moving from one to two poles drops the error term
// dramatically (paper: 36% -> 1.6%) and the q=2 curve is plot-coincident
// with the simulation.
#include <cstdio>

#include "bench_common.h"
#include "circuits/paper_circuits.h"
#include "core/engine.h"
#include "sim/transient.h"

using namespace awesim;

int main() {
  bench::print_header("FIG. 15",
                      "second-order step response at C4 (Fig. 4 tree) vs "
                      "reference simulation");
  auto ckt = circuits::fig4_rc_tree();
  const auto out = ckt.find_node("n4");
  core::Engine engine(ckt);

  core::EngineOptions o1;
  o1.order = 1;
  const auto r1 = engine.approximate(out, o1);
  core::EngineOptions o2;
  o2.order = 2;
  const auto r2 = engine.approximate(out, o2);

  sim::TransientSimulator sim(ckt);
  sim::AdaptiveOptions aopt;
  aopt.tolerance = 1e-7;
  const double t_end = 4e-3;
  const auto ref = sim.run_adaptive({out}, t_end, aopt);

  bench::print_waveform_comparison(
      ref, "sim",
      {{"awe q=1", &r1.approximation}, {"awe q=2", &r2.approximation}},
      0.0, t_end, 21);

  std::printf("\n");
  bench::print_metric("error estimate q=1 (eq. 39; paper: 36%)",
                      r1.error_estimate);
  bench::print_metric("error estimate q=2 (eq. 39; paper: 1.6%)",
                      r2.error_estimate);
  bench::print_metric("measured error q=1 vs sim",
                      bench::measured_error(r1.approximation, ref, 0.0,
                                            t_end));
  bench::print_metric("measured error q=2 vs sim",
                      bench::measured_error(r2.approximation, ref, 0.0,
                                            t_end));
  std::printf("  q=2 poles:\n");
  for (const auto& t : r2.approximation.atoms()[1].terms) {
    std::printf("    %s\n", bench::pole_str(t.pole).c_str());
  }
  return 0;
}
