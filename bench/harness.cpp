#include "harness.h"

#include <algorithm>
#include <stdexcept>

namespace awesim::bench {

namespace {

std::vector<BenchCase>& mutable_registry() {
  static std::vector<BenchCase> cases;
  return cases;
}

obs::json::Value samples_json(const std::vector<double>& samples) {
  using obs::json::Value;
  Value v = Value::object();
  v.set("median", median_of(samples));
  v.set("min", min_of(samples));
  Value arr = Value::array();
  for (double s : samples) arr.push_back(s);
  v.set("samples", std::move(arr));
  return v;
}

}  // namespace

double median_of(std::vector<double> samples) {
  if (samples.empty()) return std::numeric_limits<double>::quiet_NaN();
  std::sort(samples.begin(), samples.end());
  const std::size_t n = samples.size();
  return n % 2 == 1 ? samples[n / 2]
                    : 0.5 * (samples[n / 2 - 1] + samples[n / 2]);
}

double min_of(const std::vector<double>& samples) {
  if (samples.empty()) return std::numeric_limits<double>::quiet_NaN();
  return *std::min_element(samples.begin(), samples.end());
}

void register_bench(BenchCase c) {
  if (c.name.empty() || !c.prepare) {
    throw std::invalid_argument(
        "register_bench: a case needs a name and a prepare closure");
  }
  for (const auto& existing : mutable_registry()) {
    if (existing.name == c.name) {
      throw std::invalid_argument("register_bench: duplicate case '" +
                                  c.name + "'");
    }
  }
  mutable_registry().push_back(std::move(c));
}

const std::vector<BenchCase>& registry() { return mutable_registry(); }

BenchResult run_case(const BenchCase& c, const RunOptions& options) {
  BenchResult r;
  r.name = c.name;
  r.paper_ref = c.paper_ref;
  r.accuracy_metric = c.accuracy_metric;
  r.problem_size = c.problem_size;
  r.repeats = options.repeats > 0 ? options.repeats
                                  : (options.quick ? 3 : 7);

  PreparedCase prepared = c.prepare();
  if (!prepared.run) {
    throw std::invalid_argument("run_case: case '" + c.name +
                                "' prepared no run closure");
  }

  // Warm up allocators/caches outside the measured window, then reset
  // the phase registry so the snapshot below holds true window extrema.
  prepared.run();
  if (prepared.reference) prepared.reference();
  obs::reset_phases();
  r.wall_ms = time_samples_ms(prepared.run, r.repeats, /*warmup=*/0);
  r.phases = obs::snapshot();
  if (prepared.reference) {
    r.sim_ms = time_samples_ms(prepared.reference, r.repeats,
                               /*warmup=*/0);
  }
  if (prepared.accuracy) r.accuracy = prepared.accuracy();
  if (prepared.extra) r.extra = prepared.extra();
  return r;
}

double speedup_vs_sim(const BenchResult& r) {
  if (r.sim_ms.empty() || r.wall_ms.empty()) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  return median_of(r.sim_ms) / median_of(r.wall_ms);
}

obs::json::Value to_json(const std::vector<BenchResult>& results,
                         const RunOptions& options) {
  using obs::json::Value;
  Value doc = Value::object();
  doc.set("schema", kSchemaName);
  doc.set("schema_version", kSchemaVersion);
  doc.set("tier", options.quick ? "quick" : "full");
  doc.set("tracing_compiled_in", obs::tracing_compiled_in());
  Value benches = Value::array();
  for (const auto& r : results) {
    Value b = Value::object();
    b.set("name", r.name);
    b.set("paper_ref", r.paper_ref);
    b.set("problem_size", static_cast<double>(r.problem_size));
    b.set("repeats", r.repeats);
    b.set("wall_ms", samples_json(r.wall_ms));
    // NaN serializes as null (the json writer's contract), so a case
    // without a reference or accuracy closure reads as null downstream.
    b.set("sim_ms", r.sim_ms.empty() ? Value() : samples_json(r.sim_ms));
    b.set("speedup_vs_sim", speedup_vs_sim(r));
    b.set("accuracy", r.accuracy);
    b.set("accuracy_metric", r.accuracy_metric.empty()
                                 ? Value()
                                 : Value(r.accuracy_metric));
    Value phases = Value::array();
    for (const auto& p : r.phases) {
      Value ph = Value::object();
      ph.set("name", p.name);
      ph.set("count", static_cast<double>(p.stats.count));
      ph.set("total_ms", p.stats.total_seconds * 1e3);
      ph.set("min_ms", p.stats.min_seconds * 1e3);
      ph.set("max_ms", p.stats.max_seconds * 1e3);
      phases.push_back(std::move(ph));
    }
    b.set("phases", std::move(phases));
    // Schema v2: always an object; non-finite metrics serialize as null
    // through the writer's NaN contract.
    Value extra = Value::object();
    for (const auto& [key, value] : r.extra) extra.set(key, value);
    b.set("extra", std::move(extra));
    benches.push_back(std::move(b));
  }
  doc.set("benches", std::move(benches));
  return doc;
}

namespace {

using obs::json::Value;

void require(bool ok, const std::string& message,
             std::vector<std::string>* errors) {
  if (!ok) errors->push_back(message);
}

// A metric slot must hold a finite number or null -- never NaN text,
// never a string.
bool finite_or_null(const Value* v) {
  if (v == nullptr) return false;
  if (v->is_null()) return true;
  return v->is_number() && std::isfinite(v->as_number());
}

bool finite_number(const Value* v) {
  return v != nullptr && v->is_number() && std::isfinite(v->as_number());
}

void validate_samples(const Value* v, const std::string& where,
                      std::vector<std::string>* errors) {
  if (v == nullptr || !v->is_object()) {
    errors->push_back(where + ": expected an object");
    return;
  }
  require(finite_number(v->find("median")), where + ".median not finite",
          errors);
  require(finite_number(v->find("min")), where + ".min not finite",
          errors);
  const Value* samples = v->find("samples");
  if (samples == nullptr || !samples->is_array() || samples->size() == 0) {
    errors->push_back(where + ".samples missing or empty");
    return;
  }
  for (std::size_t i = 0; i < samples->size(); ++i) {
    require(finite_number(&samples->at(i)),
            where + ".samples[" + std::to_string(i) + "] not finite",
            errors);
  }
}

void validate_bench(const Value& b, const std::string& where,
                    std::vector<std::string>* errors) {
  if (!b.is_object()) {
    errors->push_back(where + ": expected an object");
    return;
  }
  const Value* name = b.find("name");
  require(name != nullptr && name->is_string() && !name->as_string().empty(),
          where + ".name missing or empty", errors);
  const Value* paper_ref = b.find("paper_ref");
  require(paper_ref != nullptr && paper_ref->is_string(),
          where + ".paper_ref missing", errors);
  require(finite_number(b.find("problem_size")),
          where + ".problem_size not finite", errors);
  require(finite_number(b.find("repeats")), where + ".repeats not finite",
          errors);
  validate_samples(b.find("wall_ms"), where + ".wall_ms", errors);
  const Value* sim = b.find("sim_ms");
  if (sim == nullptr) {
    errors->push_back(where + ".sim_ms missing (use null)");
  } else if (!sim->is_null()) {
    validate_samples(sim, where + ".sim_ms", errors);
  }
  require(finite_or_null(b.find("speedup_vs_sim")),
          where + ".speedup_vs_sim must be finite or null", errors);
  require(finite_or_null(b.find("accuracy")),
          where + ".accuracy must be finite or null", errors);
  const Value* metric = b.find("accuracy_metric");
  require(metric != nullptr && (metric->is_null() || metric->is_string()),
          where + ".accuracy_metric must be string or null", errors);
  const Value* extra = b.find("extra");
  if (extra == nullptr || !extra->is_object()) {
    errors->push_back(where + ".extra missing or not an object (v2)");
  } else {
    for (const auto& [key, value] : extra->items()) {
      require(finite_or_null(&value),
              where + ".extra." + key + " must be finite or null", errors);
    }
  }
  const Value* phases = b.find("phases");
  if (phases == nullptr || !phases->is_array()) {
    errors->push_back(where + ".phases missing or not an array");
    return;
  }
  for (std::size_t i = 0; i < phases->size(); ++i) {
    const Value& p = phases->at(i);
    const std::string pw = where + ".phases[" + std::to_string(i) + "]";
    if (!p.is_object()) {
      errors->push_back(pw + ": expected an object");
      continue;
    }
    const Value* pname = p.find("name");
    require(pname != nullptr && pname->is_string(), pw + ".name missing",
            errors);
    require(finite_number(p.find("count")), pw + ".count not finite",
            errors);
    require(finite_number(p.find("total_ms")), pw + ".total_ms not finite",
            errors);
    require(finite_number(p.find("min_ms")), pw + ".min_ms not finite",
            errors);
    require(finite_number(p.find("max_ms")), pw + ".max_ms not finite",
            errors);
  }
}

}  // namespace

std::vector<std::string> validate_schema(const obs::json::Value& doc) {
  std::vector<std::string> errors;
  if (!doc.is_object()) {
    errors.push_back("document: expected an object");
    return errors;
  }
  const Value* schema = doc.find("schema");
  require(schema != nullptr && schema->is_string() &&
              schema->as_string() == kSchemaName,
          std::string("schema: expected \"") + kSchemaName + "\"",
          &errors);
  const Value* version = doc.find("schema_version");
  require(finite_number(version) &&
              version->as_number() == static_cast<double>(kSchemaVersion),
          "schema_version: expected " + std::to_string(kSchemaVersion),
          &errors);
  const Value* tier = doc.find("tier");
  require(tier != nullptr && tier->is_string() &&
              (tier->as_string() == "quick" || tier->as_string() == "full"),
          "tier: expected \"quick\" or \"full\"", &errors);
  const Value* benches = doc.find("benches");
  if (benches == nullptr || !benches->is_array() || benches->size() == 0) {
    errors.push_back("benches: missing or empty array");
    return errors;
  }
  for (std::size_t i = 0; i < benches->size(); ++i) {
    validate_bench(benches->at(i),
                   "benches[" + std::to_string(i) + "]", &errors);
  }
  return errors;
}

}  // namespace awesim::bench
