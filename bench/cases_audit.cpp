// The static-audit case of the unified runner:
//
//   * audit.mega_10k (quick tier): the full three-tier audit (graph
//     rules, conditioning oracle, repetition analysis) over a generated
//     10,000-net mesh fabric (100 interior nodes per cell, 8 repeated
//     variants -- 1M interconnect nodes total), against a cold flat
//     analysis of the same design as the reference.  The contract is
//     that the pre-flight is nearly free: the audit must cost under 5%
//     of the cold analysis it runs ahead of (the "speedup" column
//     reads as cold-analysis-time / audit-time, so the gate is
//     speedup >= 20).  The margin comes from the oracle-call dedup
//     across isomorphic nets: 10k nets cost 8 oracle runs.
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "audit/audit.h"
#include "cases.h"
#include "harness.h"
#include "reduce/generate.h"
#include "timing/analyzer.h"

namespace awesim::bench {

namespace {

struct AuditState {
  timing::Design design;
  audit::AuditReport report;
  timing::TimingReport flat_report;
};

BenchCase mega_audit_case(std::string name, std::size_t target_nets,
                          bool quick_tier) {
  BenchCase c;
  c.name = std::move(name);
  c.paper_ref = "Section 4 (conditioning limits; pre-flight screening)";
  c.problem_size = target_nets;
  c.quick_tier = quick_tier;
  c.prepare = [target_nets] {
    reduce::MegaSpec spec;
    spec.style = reduce::MegaSpec::Style::Mesh;
    spec.cell_nodes = 100;
    spec.target_nodes = target_nets * spec.cell_nodes;
    spec.variants = 8;
    spec.seed = 1;
    auto state = std::make_shared<AuditState>();
    state->design = reduce::mega_design(spec);
    PreparedCase p;
    p.run = [state] {
      state->report = audit::audit_design(state->design);
    };
    p.reference = [state] {
      state->flat_report = state->design.analyze();
    };
    p.extra = [state] {
      std::vector<std::pair<std::string, double>> extra;
      extra.emplace_back("errors", static_cast<double>(state->report.errors));
      extra.emplace_back("warnings",
                         static_cast<double>(state->report.warnings));
      extra.emplace_back("infos", static_cast<double>(state->report.infos));
      extra.emplace_back("nets_assessed",
                         static_cast<double>(state->report.nets.size()));
      extra.emplace_back("repetition_groups",
                         static_cast<double>(state->report.repeated.size()));
      return extra;
    };
    return p;
  };
  return c;
}

}  // namespace

void register_audit_cases() {
  register_bench(mega_audit_case("audit.mega_10k", 10'000,
                                 /*quick_tier=*/true));
}

}  // namespace awesim::bench
