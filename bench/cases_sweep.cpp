// What-if sweep cases of the unified runner -- the incremental
// re-analysis engine (timing::Session) against cold per-point
// re-analysis:
//
//   * sweep.rc_line_1000: a 1000-section RC line stage feeding a small
//     swept tail net.  The sweep touches only the tail, so the warm
//     session recomputes one cheap stage per point and replays the
//     expensive line stage from cache; the cold reference re-runs the
//     full Design::analyze (1000-node LU and all) at every point.
//   * sweep.driver_size_100: driver sizing on the Fig. 16/17 MOS
//     interconnect tree -- 100 drive-resistance points; every point
//     recomputes the (small) stage cold, the warm session replays all
//     points from cache after the first pass.
//
// Accuracy for both: max |critical_delay(warm) - critical_delay(cold)|
// over all points, expected bitwise 0 -- the Session bit-identity
// contract, measured rather than assumed.
#include <cmath>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cases.h"
#include "harness.h"
#include "timing/session.h"

namespace awesim::bench {

namespace {

timing::NetElement r(const std::string& a, const std::string& b, double v) {
  return {timing::NetElement::Kind::Resistor, a, b, v};
}
timing::NetElement c(const std::string& a, double v) {
  return {timing::NetElement::Kind::Capacitor, a, "0", v};
}

struct SweepState {
  timing::Design design;
  timing::AnalysisOptions opt;
  timing::SweepParam param;
  std::vector<double> values;
  /// Applies one swept value to a mutation-vehicle session (cold path).
  std::function<void(timing::Session&, double)> set;
  std::unique_ptr<timing::Session> session;
  timing::SweepResult warm;
  std::vector<double> cold_delays;
};

PreparedCase prepare_sweep(std::shared_ptr<SweepState> state) {
  state->session =
      std::make_unique<timing::Session>(state->design, state->opt);
  PreparedCase p;
  p.run = [state] {
    state->warm = state->session->sweep(state->param, state->values);
  };
  p.reference = [state] {
    // Cold per-point re-analysis: same mutations, but every point pays
    // the full Design::analyze (the Session here is only the mutation
    // vehicle; its cache is never consulted by Design::analyze).
    timing::Session mut(state->design, state->opt);
    state->cold_delays.clear();
    state->cold_delays.reserve(state->values.size());
    for (const double v : state->values) {
      state->set(mut, v);
      state->cold_delays.push_back(
          mut.design().analyze(state->opt).critical_delay);
    }
  };
  p.accuracy = [state]() -> double {
    if (state->warm.points.size() != state->cold_delays.size()) {
      return std::numeric_limits<double>::quiet_NaN();
    }
    double max_dev = 0.0;
    for (std::size_t i = 0; i < state->cold_delays.size(); ++i) {
      max_dev = std::max(max_dev,
                         std::abs(state->warm.points[i].report.critical_delay -
                                  state->cold_delays[i]));
    }
    return max_dev;
  };
  p.extra = [state]() -> std::vector<std::pair<std::string, double>> {
    // Cache-health metrics of the warm path: reuse counts from the last
    // sweep plus the session cache's cumulative eviction count --
    // nonzero evictions mean the working set outran StageCache::Limits
    // and part of the measured speedup was recomputed, not replayed.
    const timing::Session::CacheStats cs = state->session->cache_stats();
    return {
        {"stages_reused", static_cast<double>(state->warm.stages_reused)},
        {"stages_recomputed",
         static_cast<double>(state->warm.stages_recomputed)},
        {"cache_evictions", static_cast<double>(cs.evictions)},
    };
  };
  return p;
}

std::vector<double> linear_values(double start, double step, int count) {
  std::vector<double> v;
  v.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    v.push_back(start + step * i);
  }
  return v;
}

BenchCase rc_line_sweep_case() {
  constexpr std::size_t kSections = 1000;
  BenchCase bc;
  bc.name = "sweep.rc_line_" + std::to_string(kSections);
  bc.paper_ref = "Section I (reuse)";
  bc.accuracy_metric = "critical_delay_abs_dev_warm_vs_cold_s";
  bc.problem_size = kSections;
  bc.prepare = [] {
    auto state = std::make_shared<SweepState>();
    timing::Design& d = state->design;
    d.add_gate({"drv", 200.0, 4e-15, 0.0});
    d.add_gate({"load", 500.0, 5e-15, 5e-12});
    // The expensive, never-swept stage: a uniform 1000-section line
    // (1 kOhm / 1 nF total, matching speedup.rc_line_1000).
    timing::Net line;
    line.name = "line";
    const double r_sec = 1e3 / static_cast<double>(kSections);
    const double c_sec = 1e-9 / static_cast<double>(kSections);
    std::string prev = "DRV";
    for (std::size_t i = 1; i <= kSections; ++i) {
      const std::string node = "c" + std::to_string(i);
      line.parasitics.push_back(r(prev, node, r_sec));
      line.parasitics.push_back(c(node, c_sec));
      prev = node;
    }
    line.sink_node["load"] = prev;
    d.add_net("drv", line);
    // The cheap, swept stage: one RC tap to the design output.
    timing::Net tail;
    tail.name = "tail";
    tail.parasitics = {r("DRV", "t1", 100.0), c("t1", 20e-15)};
    tail.sink_node["OUT"] = "t1";
    d.add_net("load", tail);
    d.set_primary_input("drv");

    state->opt.threads = 1;
    state->param = {timing::SweepParam::Kind::NetElementValue, "tail", 0};
    state->values = linear_values(100.0, 10.0, 100);
    state->set = [](timing::Session& s, double v) {
      s.set_value("tail", 0, v);
    };
    return prepare_sweep(state);
  };
  return bc;
}

BenchCase driver_size_sweep_case() {
  BenchCase bc;
  bc.name = "sweep.driver_size_100";
  bc.paper_ref = "Fig. 17";
  bc.accuracy_metric = "critical_delay_abs_dev_warm_vs_cold_s";
  bc.problem_size = 100;  // sweep points
  bc.prepare = [] {
    auto state = std::make_shared<SweepState>();
    timing::Design& d = state->design;
    d.add_gate({"drv", 150.0, 4e-15, 0.0});
    d.add_gate({"load", 1e3, 5e-15, 0.0});
    // The Fig. 16 stiff RC interconnect tree as net parasitics (R1 runs
    // from the driver hookup; sink at the paper's output n7).
    timing::Net net;
    net.name = "mos";
    net.parasitics = {
        r("DRV", "n1", 150.0), r("n1", "n2", 300.0),
        r("n2", "n3", 200.0),  r("n3", "n4", 400.0),
        r("n4", "n5", 150.0),  r("n5", "n6", 500.0),
        r("n6", "n7", 300.0),  r("n3", "n8", 50.0),
        r("n8", "n9", 1.5e3),  r("n5", "n10", 2.5e3),
        c("n1", 60e-15),       c("n2", 120e-15),
        c("n3", 30e-15),       c("n4", 250e-15),
        c("n5", 50e-15),       c("n6", 180e-15),
        c("n7", 120e-15),      c("n8", 5e-15),
        c("n9", 25e-15),       c("n10", 90e-15)};
    net.sink_node["load"] = "n7";
    d.add_net("drv", net);
    d.set_primary_input("drv");

    state->opt.threads = 1;
    state->param = {timing::SweepParam::Kind::DriveResistance, "drv", 0};
    state->values = linear_values(50.0, 5.0, 100);
    state->set = [](timing::Session& s, double v) {
      s.set_drive_resistance("drv", v);
    };
    return prepare_sweep(state);
  };
  return bc;
}

}  // namespace

void register_sweep_cases() {
  register_bench(rc_line_sweep_case());
  register_bench(driver_size_sweep_case());
}

}  // namespace awesim::bench
