// What-if sweep cases of the unified runner -- the incremental
// re-analysis engine (timing::Session) against cold per-point
// re-analysis:
//
//   * sweep.rc_line_1000: a 1000-section RC line stage feeding a small
//     swept tail net.  The sweep touches only the tail, so the warm
//     session recomputes one cheap stage per point and replays the
//     expensive line stage from cache; the cold reference re-runs the
//     full Design::analyze (1000-node LU and all) at every point.
//   * sweep.driver_size_100: driver sizing on the Fig. 16/17 MOS
//     interconnect tree -- 100 drive-resistance points; every point
//     recomputes the (small) stage cold, the warm session replays all
//     points from cache after the first pass.
//
// Accuracy for both: max |critical_delay(warm) - critical_delay(cold)|
// over all points, expected bitwise 0 -- the Session bit-identity
// contract, measured rather than assumed.
#include <cmath>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cases.h"
#include "harness.h"
#include "timing/session.h"

namespace awesim::bench {

namespace {

timing::NetElement r(const std::string& a, const std::string& b, double v) {
  return {timing::NetElement::Kind::Resistor, a, b, v};
}
timing::NetElement c(const std::string& a, double v) {
  return {timing::NetElement::Kind::Capacitor, a, "0", v};
}

struct SweepState {
  timing::Design design;
  timing::AnalysisOptions opt;
  timing::SweepParam param;
  std::vector<double> values;
  /// Applies one swept value to a mutation-vehicle session (cold path).
  std::function<void(timing::Session&, double)> set;
  /// When set, regenerates `values` before every timed run -- cases that
  /// must defeat the stage cache rotate their sweep values per epoch so
  /// each repetition re-evaluates (through the low-rank warm path)
  /// instead of replaying cached results.  The reference closure reads
  /// `values` at call time, so cold comparisons always see the epoch the
  /// last timed run used.
  std::function<std::vector<double>()> next_values;
  std::unique_ptr<timing::Session> session;
  timing::SweepResult warm;
  std::vector<double> cold_delays;
};

PreparedCase prepare_sweep(std::shared_ptr<SweepState> state) {
  state->session =
      std::make_unique<timing::Session>(state->design, state->opt);
  PreparedCase p;
  p.run = [state] {
    if (state->next_values) state->values = state->next_values();
    state->warm = state->session->sweep(state->param, state->values);
  };
  p.reference = [state] {
    // Cold per-point re-analysis: same mutations, but every point pays
    // the full Design::analyze (the Session here is only the mutation
    // vehicle; its cache is never consulted by Design::analyze).
    timing::Session mut(state->design, state->opt);
    state->cold_delays.clear();
    state->cold_delays.reserve(state->values.size());
    for (const double v : state->values) {
      state->set(mut, v);
      state->cold_delays.push_back(
          mut.design().analyze(state->opt).critical_delay);
    }
  };
  p.accuracy = [state]() -> double {
    if (state->warm.points.size() != state->cold_delays.size()) {
      return std::numeric_limits<double>::quiet_NaN();
    }
    double max_dev = 0.0;
    for (std::size_t i = 0; i < state->cold_delays.size(); ++i) {
      max_dev = std::max(max_dev,
                         std::abs(state->warm.points[i].report.critical_delay -
                                  state->cold_delays[i]));
    }
    return max_dev;
  };
  p.extra = [state]() -> std::vector<std::pair<std::string, double>> {
    // Cache-health metrics of the warm path: reuse counts from the last
    // sweep plus the session cache's cumulative eviction count --
    // nonzero evictions mean the working set outran StageCache::Limits
    // and part of the measured speedup was recomputed, not replayed.
    // The low-rank counters report the solver path actually taken over
    // the last sweep's points: Sherman-Morrison-corrected evaluations
    // vs refused updates that forced a full refactorization.
    const timing::Session::CacheStats cs = state->session->cache_stats();
    double lr_points = 0.0;
    double lr_refactorizations = 0.0;
    for (const timing::SweepPoint& pt : state->warm.points) {
      lr_points += static_cast<double>(pt.report.awe_stats.low_rank_points);
      lr_refactorizations += static_cast<double>(
          pt.report.awe_stats.low_rank_refactorizations);
    }
    return {
        {"stages_reused", static_cast<double>(state->warm.stages_reused)},
        {"stages_recomputed",
         static_cast<double>(state->warm.stages_recomputed)},
        {"cache_evictions", static_cast<double>(cs.evictions)},
        {"low_rank_points", lr_points},
        {"low_rank_refactorizations", lr_refactorizations},
    };
  };
  return p;
}

std::vector<double> linear_values(double start, double step, int count) {
  std::vector<double> v;
  v.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    v.push_back(start + step * i);
  }
  return v;
}

BenchCase rc_line_sweep_case() {
  constexpr std::size_t kSections = 1000;
  BenchCase bc;
  bc.name = "sweep.rc_line_" + std::to_string(kSections);
  bc.paper_ref = "Section I (reuse)";
  bc.accuracy_metric = "critical_delay_abs_dev_warm_vs_cold_s";
  bc.problem_size = kSections;
  bc.prepare = [] {
    auto state = std::make_shared<SweepState>();
    timing::Design& d = state->design;
    d.add_gate({"drv", 200.0, 4e-15, 0.0});
    d.add_gate({"load", 500.0, 5e-15, 5e-12});
    // The expensive, never-swept stage: a uniform 1000-section line
    // (1 kOhm / 1 nF total, matching speedup.rc_line_1000).
    timing::Net line;
    line.name = "line";
    const double r_sec = 1e3 / static_cast<double>(kSections);
    const double c_sec = 1e-9 / static_cast<double>(kSections);
    std::string prev = "DRV";
    for (std::size_t i = 1; i <= kSections; ++i) {
      const std::string node = "c" + std::to_string(i);
      line.parasitics.push_back(r(prev, node, r_sec));
      line.parasitics.push_back(c(node, c_sec));
      prev = node;
    }
    line.sink_node["load"] = prev;
    d.add_net("drv", line);
    // The cheap, swept stage: one RC tap to the design output.
    timing::Net tail;
    tail.name = "tail";
    tail.parasitics = {r("DRV", "t1", 100.0), c("t1", 20e-15)};
    tail.sink_node["OUT"] = "t1";
    d.add_net("load", tail);
    d.set_primary_input("drv");

    state->opt.threads = 1;
    state->param = {timing::SweepParam::Kind::NetElementValue, "tail", 0};
    state->values = linear_values(100.0, 10.0, 100);
    state->set = [](timing::Session& s, double v) {
      s.set_value("tail", 0, v);
    };
    return prepare_sweep(state);
  };
  return bc;
}

BenchCase driver_size_sweep_case() {
  BenchCase bc;
  bc.name = "sweep.driver_size_100";
  bc.paper_ref = "Fig. 17";
  bc.accuracy_metric = "critical_delay_abs_dev_warm_vs_cold_s";
  bc.problem_size = 100;  // sweep points
  bc.prepare = [] {
    auto state = std::make_shared<SweepState>();
    timing::Design& d = state->design;
    d.add_gate({"drv", 150.0, 4e-15, 0.0});
    d.add_gate({"load", 1e3, 5e-15, 0.0});
    // The Fig. 16 stiff RC interconnect tree as net parasitics (R1 runs
    // from the driver hookup; sink at the paper's output n7).
    timing::Net net;
    net.name = "mos";
    net.parasitics = {
        r("DRV", "n1", 150.0), r("n1", "n2", 300.0),
        r("n2", "n3", 200.0),  r("n3", "n4", 400.0),
        r("n4", "n5", 150.0),  r("n5", "n6", 500.0),
        r("n6", "n7", 300.0),  r("n3", "n8", 50.0),
        r("n8", "n9", 1.5e3),  r("n5", "n10", 2.5e3),
        c("n1", 60e-15),       c("n2", 120e-15),
        c("n3", 30e-15),       c("n4", 250e-15),
        c("n5", 50e-15),       c("n6", 180e-15),
        c("n7", 120e-15),      c("n8", 5e-15),
        c("n9", 25e-15),       c("n10", 90e-15)};
    net.sink_node["load"] = "n7";
    d.add_net("drv", net);
    d.set_primary_input("drv");

    state->opt.threads = 1;
    state->param = {timing::SweepParam::Kind::DriveResistance, "drv", 0};
    state->values = linear_values(50.0, 5.0, 100);
    state->set = [](timing::Session& s, double v) {
      s.set_drive_resistance("drv", v);
    };
    return prepare_sweep(state);
  };
  return bc;
}

BenchCase rc_line_low_rank_sweep_case() {
  constexpr std::size_t kSections = 1000;
  constexpr int kPoints = 20;
  BenchCase bc;
  bc.name = "sweep.rc_line_lowrank_" + std::to_string(kSections);
  bc.paper_ref = "Section I (reuse)";
  bc.accuracy_metric = "critical_delay_abs_dev_lowrank_vs_exact_s";
  bc.problem_size = kSections;
  bc.prepare = [] {
    auto state = std::make_shared<SweepState>();
    timing::Design& d = state->design;
    d.add_gate({"drv", 200.0, 4e-15, 0.0});
    d.add_gate({"load", 500.0, 5e-15, 5e-12});
    // Same 1000-section line as sweep.rc_line_1000, but here the sweep
    // varies a resistor *inside* the line, so the expensive stage
    // itself changes at every point and the stage cache cannot replay
    // it.  The warm session instead re-solves through the
    // Sherman-Morrison correction of the baseline's cached LU.  This is
    // a *differential* case: the reference is the same Session machinery
    // with low_rank off (full refactorization at every point), so the
    // accuracy column is exactly the low-rank drift contract
    // (|delta critical_delay| <= 1e-9 s vs the exact factorization) and
    // the extra counters prove the corrected path ran.  Per-point cost
    // on this topology is dominated by the stage rebuild and moment
    // recursion, not the (sparse, near-tridiagonal) factorization, so
    // expect speedup ~1x -- the case guards correctness and counters,
    // not wall-clock.
    timing::Net line;
    line.name = "line";
    const double r_sec = 1e3 / static_cast<double>(kSections);
    const double c_sec = 1e-9 / static_cast<double>(kSections);
    std::string prev = "DRV";
    for (std::size_t i = 1; i <= kSections; ++i) {
      const std::string node = "c" + std::to_string(i);
      line.parasitics.push_back(r(prev, node, r_sec));
      line.parasitics.push_back(c(node, c_sec));
      prev = node;
    }
    line.sink_node["load"] = prev;
    d.add_net("drv", line);
    timing::Net tail;
    tail.name = "tail";
    tail.parasitics = {r("DRV", "t1", 100.0), c("t1", 20e-15)};
    tail.sink_node["OUT"] = "t1";
    d.add_net("load", tail);
    d.set_primary_input("drv");

    state->opt.threads = 1;
    state->param = {timing::SweepParam::Kind::NetElementValue, "line", 0};
    // Rotate the swept values every timed repetition: repeat N gets
    // values no earlier repetition analyzed, so every point is a fresh
    // low-rank evaluation instead of a cache replay.
    auto epoch = std::make_shared<int>(0);
    state->next_values = [epoch, r_sec] {
      ++*epoch;
      std::vector<double> v;
      v.reserve(kPoints);
      for (int i = 0; i < kPoints; ++i) {
        v.push_back(r_sec * (1.1 + 0.05 * i) + r_sec * 1e-6 * *epoch);
      }
      return v;
    };
    state->values = state->next_values ? state->next_values()
                                       : std::vector<double>();
    state->set = [](timing::Session& s, double v) {
      s.set_value("line", 0, v);
    };
    PreparedCase p = prepare_sweep(state);
    // Differential reference: the exact warm path.  Same Session, same
    // stage cache machinery, low_rank off -- every point pays a full
    // refactorization.  Reads state->values at call time, so it always
    // compares against the epoch the last timed run used.
    timing::SessionOptions exact_opts;
    exact_opts.low_rank = false;
    auto exact = std::make_shared<timing::Session>(state->design, state->opt,
                                                   exact_opts);
    p.reference = [state, exact] {
      // Drop the exact session's stage cache first: repeated reference
      // runs see the same epoch values, and a cache replay would
      // measure nothing.  With the cache cold, every point refactorizes.
      exact->clear_cache();
      const timing::SweepResult res =
          exact->sweep(state->param, state->values);
      state->cold_delays.clear();
      state->cold_delays.reserve(res.points.size());
      for (const timing::SweepPoint& pt : res.points) {
        state->cold_delays.push_back(pt.report.critical_delay);
      }
    };
    return p;
  };
  return bc;
}

}  // namespace

void register_sweep_cases() {
  register_bench(rc_line_sweep_case());
  register_bench(driver_size_sweep_case());
  register_bench(rc_line_low_rank_sweep_case());
}

}  // namespace awesim::bench
