// Fig. 12: first-order AWE vs reference simulation for the Fig. 9 circuit
// (the Fig. 4 tree with a grounded resistor at the output).
//
// Reproduced content: the grounded resistor scales the steady state below
// the 5 V input (resistive divider); AWE's m_0 matching lands the final
// value exactly and the first moment reflects both the steady-state change
// and the modified G matrix (Section 4.2).
#include <cstdio>

#include "bench_common.h"
#include "circuits/paper_circuits.h"
#include "core/engine.h"
#include "sim/transient.h"

using namespace awesim;

int main() {
  bench::print_header("FIG. 12",
                      "first-order AWE with grounded resistor (Fig. 9) vs "
                      "reference simulation");
  auto ckt = circuits::fig9_grounded_resistor();
  const auto out = ckt.find_node("n4");

  core::Engine engine(ckt);
  core::EngineOptions opt;
  opt.order = 1;
  const auto result = engine.approximate(out, opt);

  sim::TransientSimulator sim(ckt);
  sim::AdaptiveOptions aopt;
  aopt.tolerance = 1e-7;
  const double t_end = 3e-3;
  const auto ref = sim.run_adaptive({out}, t_end, aopt);

  bench::print_waveform_comparison(ref, "sim", {{"awe q=1",
                                                 &result.approximation}},
                                   0.0, t_end, 21);

  std::printf("\n");
  bench::print_metric("steady state (exact divider 5*4k/7k)",
                      5.0 * 4.0 / 7.0, "V");
  bench::print_metric("AWE final value", result.approximation.final_value(),
                      "V");
  bench::print_metric("simulated final value", ref.values().back(), "V");
  bench::print_metric("scaled Elmore delay (-mu0/mu-1)",
                      engine.elmore_delay(out), "s");
  bench::print_metric("measured transient error vs sim",
                      bench::measured_error(result.approximation, ref, 0.0,
                                            t_end));

  // Second order for comparison, as the error at q=1 is visible.
  core::EngineOptions opt2;
  opt2.order = 2;
  const auto r2 = engine.approximate(out, opt2);
  bench::print_metric("measured error at second order",
                      bench::measured_error(r2.approximation, ref, 0.0,
                                            t_end));
  return 0;
}
