// Table II: RLC circuit (Fig. 25) poles and approximate poles.
//
// Reproduced content: the 2nd-order AWE approximation finds one complex
// pair near the actual dominant pair; the 4th-order approximation places
// two pairs near the first two actual pairs; the actual system has three
// under-damped complex pairs.
#include <cstdio>

#include "bench_common.h"
#include "circuits/paper_circuits.h"
#include "core/engine.h"

using namespace awesim;

namespace {

la::ComplexVector approx_poles(core::Engine& engine, circuit::NodeId out,
                               int q) {
  core::EngineOptions opt;
  opt.order = q;
  const auto result = engine.approximate(out, opt);
  la::ComplexVector poles;
  for (const auto& atom : result.approximation.atoms()) {
    for (const auto& t : atom.terms) poles.push_back(t.pole);
    if (!atom.terms.empty()) break;
  }
  std::sort(poles.begin(), poles.end(),
            [](la::Complex a, la::Complex b) {
              if (std::abs(a) != std::abs(b)) return std::abs(a) < std::abs(b);
              return a.imag() < b.imag();
            });
  return poles;
}

}  // namespace

int main() {
  bench::print_header("TABLE II",
                      "RLC circuit poles and approximate poles (Fig. 25), "
                      "5 V ideal step");
  auto ckt = circuits::fig25_rlc_ladder();
  core::Engine engine(ckt);
  const auto out = ckt.find_node("n3");

  const auto q2 = approx_poles(engine, out, 2);
  const auto q4 = approx_poles(engine, out, 4);
  const auto actual = engine.actual_poles();
  bench::print_pole_table({"2nd order", "4th order", "actual"},
                          {q2, q4, actual});

  // First-order sanity row, as discussed in Section 5.4: a single real
  // pole, inadequate for a ringing response.
  core::EngineOptions opt;
  opt.order = 1;
  const auto q1 = engine.approximate(out, opt);
  if (!q1.approximation.atoms()[1].terms.empty()) {
    std::printf("\n1st-order (single real) pole: %s\n",
                bench::pole_str(
                    q1.approximation.atoms()[1].terms[0].pole)
                    .c_str());
  }
  return 0;
}
