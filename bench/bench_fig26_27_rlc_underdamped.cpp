// Figs. 26 and 27: the underdamped RLC circuit (Fig. 25).
//
// Reproduced content:
//   * Fig. 26 (ideal 5 V step): q=1 is useless for a ringing response
//     (paper: 74%); q=2 detects the overshoot but misses detail (paper:
//     22%); q=4 matches the waveform detail (paper: <1%);
//   * Fig. 27 (1 ns rise): the finite slope reweights the residues toward
//     one complex pair and second order already fits well.
#include <cstdio>

#include "bench_common.h"
#include "circuits/paper_circuits.h"
#include "core/engine.h"
#include "sim/transient.h"

using namespace awesim;

int main() {
  bench::print_header("FIG. 26",
                      "underdamped RLC (Fig. 25) step response: q=2 and "
                      "q=4 vs reference simulation");
  {
    auto ckt = circuits::fig25_rlc_ladder();
    const auto out = ckt.find_node("n3");
    core::Engine engine(ckt);

    core::EngineOptions o;
    const double t_end = 6e-9;
    sim::TransientSimulator sim(ckt);
    sim::AdaptiveOptions aopt;
    aopt.tolerance = 1e-7;
    const auto ref = sim.run_adaptive({out}, t_end, aopt);

    o.order = 2;
    const auto r2 = engine.approximate(out, o);
    o.order = 4;
    const auto r4 = engine.approximate(out, o);

    bench::print_waveform_comparison(
        ref, "sim",
        {{"awe q=2", &r2.approximation}, {"awe q=4", &r4.approximation}},
        0.0, t_end, 26);

    o.order = 1;
    const auto r1 = engine.approximate(out, o);
    std::printf("\n");
    bench::print_metric("measured error q=1 (paper: 74%)",
                        bench::measured_error(r1.approximation, ref, 0.0,
                                              t_end));
    bench::print_metric("measured error q=2 (paper: 22%)",
                        bench::measured_error(r2.approximation, ref, 0.0,
                                              t_end));
    bench::print_metric("measured error q=4 (paper: <1%)",
                        bench::measured_error(r4.approximation, ref, 0.0,
                                              t_end));
    bench::print_metric("simulated overshoot peak", ref.max_value(), "V");
    const auto awe4 = r4.approximation.sample(0.0, t_end, 4001);
    bench::print_metric("AWE q=4 overshoot peak", awe4.max_value(), "V");
  }

  bench::print_header("FIG. 27",
                      "underdamped RLC (Fig. 25), 5 V input with 1 ns "
                      "rise: q=2 vs reference simulation");
  {
    circuits::Drive drive;
    drive.rise_time = 1e-9;
    auto ckt = circuits::fig25_rlc_ladder(drive);
    const auto out = ckt.find_node("n3");
    core::Engine engine(ckt);

    const double t_end = 8e-9;
    sim::TransientSimulator sim(ckt);
    sim::AdaptiveOptions aopt;
    aopt.tolerance = 1e-7;
    const auto ref = sim.run_adaptive({out}, t_end, aopt);

    core::EngineOptions o;
    o.order = 2;
    const auto r2 = engine.approximate(out, o);
    bench::print_waveform_comparison(ref, "sim",
                                     {{"awe q=2", &r2.approximation}}, 0.0,
                                     t_end, 26);
    std::printf("\n");
    bench::print_metric("measured error q=2, 1 ns rise",
                        bench::measured_error(r2.approximation, ref, 0.0,
                                              t_end));
    bench::print_note(
        "compare with the 22% step-response error at the same order: the "
        "ramp input shifts the residues toward the dominant pair");
  }
  return 0;
}
