* an unsupported simulator directive
.option reltol=1e-4
V1 in 0 DC 1
R1 in out 1k
C1 out 0 1p
