* many independent mistakes; every one must be reported in one pass
R1 a 0
C1 a 0 10zz
V1 a 0 WIGGLE(1 2)
R2 a b 1k
.option foo
X1 a b nosuch
C2 b 0 1p
