* the same resistor pasted twice
V1 in 0 DC 1
R1 in out 1k
R1 in out 2k
C1 out 0 1p
