* a BJT card in an RLC-only netlist
V1 in 0 DC 1
Q1 in out base 2N2222
C1 out 0 1p
