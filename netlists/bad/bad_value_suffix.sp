* engineering suffix that does not exist
V1 in 0 DC 1
R1 in out 2.2q
C1 out 0 1p
