* zero-valued parts are structurally singular
V1 in 0 DC 1
R1 in out 0
C1 out 0 0
