* seeded defect: n_bomb fans out to 40 sinks (default threshold 32)
.gate drv rdrive=1k cin=5f
.input drv
.net drv n_bomb
R1 DRV a 100
C1 a 0 50f
.sink s01 a
.sink s02 a
.sink s03 a
.sink s04 a
.sink s05 a
.sink s06 a
.sink s07 a
.sink s08 a
.sink s09 a
.sink s10 a
.sink s11 a
.sink s12 a
.sink s13 a
.sink s14 a
.sink s15 a
.sink s16 a
.sink s17 a
.sink s18 a
.sink s19 a
.sink s20 a
.sink s21 a
.sink s22 a
.sink s23 a
.sink s24 a
.sink s25 a
.sink s26 a
.sink s27 a
.sink s28 a
.sink s29 a
.sink s30 a
.sink s31 a
.sink s32 a
.sink s33 a
.sink s34 a
.sink s35 a
.sink s36 a
.sink s37 a
.sink s38 a
.sink s39 a
.sink s40 a
.endnet
