* repeated structure: n_a and n_b are one cell under two names -- the
* reduction store collapses once and rehydrates once
.gate p1 rdrive=1k cin=5f
.gate p2 rdrive=1k cin=5f
.gate q1 rdrive=2k cin=4f
.gate q2 rdrive=2k cin=4f
.input p1
.input p2
.net p1 n_a
R1 DRV m1 120
C1 m1 0 15f
R2 m1 a 80
C2 a 0 12f
.sink q1 a
.endnet
.net p2 n_b
R1 DRV m1 120
C1 m1 0 15f
R2 m1 a 80
C2 a 0 12f
.sink q2 a
.endnet
