* seeded defect: ~8-decade Elmore tau spread on n_stiff; the order-3
* Hankel system cancels past the double-precision digit budget
.gate drv rdrive=10 cin=1f
.input drv
.net drv n_stiff
R1 DRV a 1
C1 a 0 1p
R2 a b 100k
C2 b 0 10n
.sink out b
.endnet
