* seeded defect: combinational cycle g1 -> g2 -> g3 -> g1
.gate in rdrive=500 cin=2f
.gate g1 rdrive=1k cin=5f
.gate g2 rdrive=1.2k cin=5f
.gate g3 rdrive=1.5k cin=5f
.input in
.net in n_in
R1 DRV a 200
C1 a 0 20f
.sink g1 a
.endnet
.net g1 n1
R1 DRV a 300
C1 a 0 22f
.sink g2 a
.endnet
.net g2 n2
R1 DRV a 400
C1 a 0 24f
.sink g3 a
.endnet
.net g3 n3
R1 DRV a 500
C1 a 0 26f
.sink g1 a
.endnet
