* seeded defect: u1 has no driving net and no .input declaration
.gate drv rdrive=1k cin=5f
.gate u1 rdrive=2k cin=6f
.input drv
.net drv nd
R1 DRV a 150
C1 a 0 30f
.sink out a
.endnet
.net u1 nu
R1 DRV b 250
C1 b 0 35f
.sink out2 b
.endnet
