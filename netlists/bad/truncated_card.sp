* resistor card cut short mid-edit
V1 in 0 DC 1
R1 in out
C1 out 0 1p
