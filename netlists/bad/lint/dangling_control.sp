* F1 references a controlling voltage source that does not exist
V1 in 0 DC 1
R1 in out 1k
C1 out 0 1p
F1 out 0 Vmissing 2
.end
