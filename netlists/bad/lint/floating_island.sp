* nodes a/b form an island with their own source and no path to ground
V1 in 0 DC 1
R1 in out 1k
C1 out 0 1p
V2 a b DC 1
R2 a b 2k
.end
