* a negative resistance is nonphysical in an extracted interconnect net
V1 in 0 DC 1
R1 in out -1k
C1 out 0 1p
.end
