* V1-L1-L2 is a loop of voltage-defined branches: structurally singular
V1 in 0 DC 1
L1 in out 1n
L2 out 0 2n
R1 out 0 1k
C1 out 0 1p
.end
