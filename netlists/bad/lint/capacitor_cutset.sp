* I1 drives node x which only capacitors touch: no DC return path
V1 in 0 DC 1
R1 in out 1k
C1 out 0 1p
I1 0 x DC 1m
C2 x 0 2p
.end
