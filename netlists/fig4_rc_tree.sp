* Fig. 4 RC tree (paper Section IV): Elmore(n4) = 0.6 ms.
* Drive: 5 V ideal step.
Vin in 0 STEP(0 5)
R1 in n1 1k
R2 n1 n2 1k
R3 n1 n3 1k
R4 n3 n4 1k
C1 n1 0 50n
C2 n2 0 50n
C3 n3 0 100n
C4 n4 0 100n
.end
