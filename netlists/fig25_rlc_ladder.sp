* Fig. 25 underdamped RLC ladder: three complex pole pairs.
* Tapered sections; output at n3.
Vin in 0 STEP(0 5)
R1 in a 30
L1 a b1 10n
Rw1 b1 n1 6
C1 n1 0 2p
L2 n1 b2 4n
Rw2 b2 n2 4
C2 n2 0 0.8p
L3 n2 b3 1.6n
Rw3 b3 n3 2
C3 n3 0 0.32p
.end
