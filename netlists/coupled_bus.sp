* Two-bit bus with inter-wire coupling, built from a wire-segment
* subcircuit; aggressor switches, victim held low by its driver.
.subckt seg in out
Rw in out 350
Cw out 0 45f
.ends
Vagg drv0 0 STEP(0 5 0 0.3n)
Rdrv0 drv0 a0 800
X1 a0 a1 seg
X2 a1 a2 seg
Rdrv1 v0 0 1200
X3 v0 v1 seg
X4 v1 v2 seg
* coupling between the far segments of the two wires
Cx1 a1 v1 30f
Cx2 a2 v2 40f
.end
