# Empty dependencies file for test_la_matrix.
# This may be replaced when dependencies are built.
