file(REMOVE_RECURSE
  "CMakeFiles/test_la_matrix.dir/test_la_matrix.cpp.o"
  "CMakeFiles/test_la_matrix.dir/test_la_matrix.cpp.o.d"
  "test_la_matrix"
  "test_la_matrix.pdb"
  "test_la_matrix[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_la_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
