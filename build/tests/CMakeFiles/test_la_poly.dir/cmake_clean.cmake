file(REMOVE_RECURSE
  "CMakeFiles/test_la_poly.dir/test_la_poly.cpp.o"
  "CMakeFiles/test_la_poly.dir/test_la_poly.cpp.o.d"
  "test_la_poly"
  "test_la_poly.pdb"
  "test_la_poly[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_la_poly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
