# Empty dependencies file for test_la_poly.
# This may be replaced when dependencies are built.
