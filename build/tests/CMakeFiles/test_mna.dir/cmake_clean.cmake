file(REMOVE_RECURSE
  "CMakeFiles/test_mna.dir/test_mna.cpp.o"
  "CMakeFiles/test_mna.dir/test_mna.cpp.o.d"
  "test_mna"
  "test_mna.pdb"
  "test_mna[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mna.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
