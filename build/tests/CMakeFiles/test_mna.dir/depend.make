# Empty dependencies file for test_mna.
# This may be replaced when dependencies are built.
