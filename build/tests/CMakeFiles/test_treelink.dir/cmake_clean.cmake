file(REMOVE_RECURSE
  "CMakeFiles/test_treelink.dir/test_treelink.cpp.o"
  "CMakeFiles/test_treelink.dir/test_treelink.cpp.o.d"
  "test_treelink"
  "test_treelink.pdb"
  "test_treelink[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_treelink.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
