# Empty compiler generated dependencies file for test_treelink.
# This may be replaced when dependencies are built.
