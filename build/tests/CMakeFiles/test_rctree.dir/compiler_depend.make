# Empty compiler generated dependencies file for test_rctree.
# This may be replaced when dependencies are built.
