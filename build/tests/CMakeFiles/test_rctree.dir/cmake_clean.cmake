file(REMOVE_RECURSE
  "CMakeFiles/test_rctree.dir/test_rctree.cpp.o"
  "CMakeFiles/test_rctree.dir/test_rctree.cpp.o.d"
  "test_rctree"
  "test_rctree.pdb"
  "test_rctree[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rctree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
