# Empty dependencies file for test_netlist_files.
# This may be replaced when dependencies are built.
