# Empty dependencies file for test_pade.
# This may be replaced when dependencies are built.
