file(REMOVE_RECURSE
  "CMakeFiles/test_pade.dir/test_pade.cpp.o"
  "CMakeFiles/test_pade.dir/test_pade.cpp.o.d"
  "test_pade"
  "test_pade.pdb"
  "test_pade[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pade.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
