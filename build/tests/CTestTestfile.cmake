# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_la_lu[1]_include.cmake")
include("/root/repo/build/tests/test_la_eig[1]_include.cmake")
include("/root/repo/build/tests/test_la_poly[1]_include.cmake")
include("/root/repo/build/tests/test_engine[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_pade[1]_include.cmake")
include("/root/repo/build/tests/test_error[1]_include.cmake")
include("/root/repo/build/tests/test_moments[1]_include.cmake")
include("/root/repo/build/tests/test_mna[1]_include.cmake")
include("/root/repo/build/tests/test_rctree[1]_include.cmake")
include("/root/repo/build/tests/test_la_matrix[1]_include.cmake")
include("/root/repo/build/tests/test_la_sparse[1]_include.cmake")
include("/root/repo/build/tests/test_circuit[1]_include.cmake")
include("/root/repo/build/tests/test_netlist[1]_include.cmake")
include("/root/repo/build/tests/test_waveform[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_timing[1]_include.cmake")
include("/root/repo/build/tests/test_transfer[1]_include.cmake")
include("/root/repo/build/tests/test_engine_scenarios[1]_include.cmake")
include("/root/repo/build/tests/test_treelink[1]_include.cmake")
include("/root/repo/build/tests/test_cross_validation[1]_include.cmake")
include("/root/repo/build/tests/test_netlist_files[1]_include.cmake")
