# Empty compiler generated dependencies file for mos_interconnect_timing.
# This may be replaced when dependencies are built.
