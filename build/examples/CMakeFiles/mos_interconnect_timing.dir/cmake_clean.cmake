file(REMOVE_RECURSE
  "CMakeFiles/mos_interconnect_timing.dir/mos_interconnect_timing.cpp.o"
  "CMakeFiles/mos_interconnect_timing.dir/mos_interconnect_timing.cpp.o.d"
  "mos_interconnect_timing"
  "mos_interconnect_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mos_interconnect_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
