
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/crosstalk_charge_sharing.cpp" "examples/CMakeFiles/crosstalk_charge_sharing.dir/crosstalk_charge_sharing.cpp.o" "gcc" "examples/CMakeFiles/crosstalk_charge_sharing.dir/crosstalk_charge_sharing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/awesim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/awesim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/rctree/CMakeFiles/awesim_rctree.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/awesim_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/circuits/CMakeFiles/awesim_circuits.dir/DependInfo.cmake"
  "/root/repo/build/src/mna/CMakeFiles/awesim_mna.dir/DependInfo.cmake"
  "/root/repo/build/src/waveform/CMakeFiles/awesim_waveform.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/awesim_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/awesim_la.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
