# Empty compiler generated dependencies file for crosstalk_charge_sharing.
# This may be replaced when dependencies are built.
