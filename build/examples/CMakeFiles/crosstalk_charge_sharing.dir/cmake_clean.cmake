file(REMOVE_RECURSE
  "CMakeFiles/crosstalk_charge_sharing.dir/crosstalk_charge_sharing.cpp.o"
  "CMakeFiles/crosstalk_charge_sharing.dir/crosstalk_charge_sharing.cpp.o.d"
  "crosstalk_charge_sharing"
  "crosstalk_charge_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crosstalk_charge_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
