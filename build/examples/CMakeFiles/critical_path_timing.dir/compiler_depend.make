# Empty compiler generated dependencies file for critical_path_timing.
# This may be replaced when dependencies are built.
