file(REMOVE_RECURSE
  "CMakeFiles/critical_path_timing.dir/critical_path_timing.cpp.o"
  "CMakeFiles/critical_path_timing.dir/critical_path_timing.cpp.o.d"
  "critical_path_timing"
  "critical_path_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/critical_path_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
