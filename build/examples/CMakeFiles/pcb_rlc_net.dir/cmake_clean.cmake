file(REMOVE_RECURSE
  "CMakeFiles/pcb_rlc_net.dir/pcb_rlc_net.cpp.o"
  "CMakeFiles/pcb_rlc_net.dir/pcb_rlc_net.cpp.o.d"
  "pcb_rlc_net"
  "pcb_rlc_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcb_rlc_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
