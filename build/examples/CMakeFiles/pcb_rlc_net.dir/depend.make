# Empty dependencies file for pcb_rlc_net.
# This may be replaced when dependencies are built.
