file(REMOVE_RECURSE
  "../bench/bench_speedup_vs_sim"
  "../bench/bench_speedup_vs_sim.pdb"
  "CMakeFiles/bench_speedup_vs_sim.dir/bench_speedup_vs_sim.cpp.o"
  "CMakeFiles/bench_speedup_vs_sim.dir/bench_speedup_vs_sim.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_speedup_vs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
