# Empty dependencies file for bench_fig15_secondorder_step.
# This may be replaced when dependencies are built.
