file(REMOVE_RECURSE
  "../bench/bench_fig15_secondorder_step"
  "../bench/bench_fig15_secondorder_step.pdb"
  "CMakeFiles/bench_fig15_secondorder_step.dir/bench_fig15_secondorder_step.cpp.o"
  "CMakeFiles/bench_fig15_secondorder_step.dir/bench_fig15_secondorder_step.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_secondorder_step.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
