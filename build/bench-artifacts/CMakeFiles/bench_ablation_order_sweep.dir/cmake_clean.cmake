file(REMOVE_RECURSE
  "../bench/bench_ablation_order_sweep"
  "../bench/bench_ablation_order_sweep.pdb"
  "CMakeFiles/bench_ablation_order_sweep.dir/bench_ablation_order_sweep.cpp.o"
  "CMakeFiles/bench_ablation_order_sweep.dir/bench_ablation_order_sweep.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_order_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
