file(REMOVE_RECURSE
  "../bench/bench_fig20_21_nonequilibrium"
  "../bench/bench_fig20_21_nonequilibrium.pdb"
  "CMakeFiles/bench_fig20_21_nonequilibrium.dir/bench_fig20_21_nonequilibrium.cpp.o"
  "CMakeFiles/bench_fig20_21_nonequilibrium.dir/bench_fig20_21_nonequilibrium.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig20_21_nonequilibrium.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
