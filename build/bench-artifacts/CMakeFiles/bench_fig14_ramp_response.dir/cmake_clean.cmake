file(REMOVE_RECURSE
  "../bench/bench_fig14_ramp_response"
  "../bench/bench_fig14_ramp_response.pdb"
  "CMakeFiles/bench_fig14_ramp_response.dir/bench_fig14_ramp_response.cpp.o"
  "CMakeFiles/bench_fig14_ramp_response.dir/bench_fig14_ramp_response.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_ramp_response.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
