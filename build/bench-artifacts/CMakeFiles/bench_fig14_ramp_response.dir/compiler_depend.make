# Empty compiler generated dependencies file for bench_fig14_ramp_response.
# This may be replaced when dependencies are built.
