# Empty dependencies file for bench_fig17_18_mos_interconnect.
# This may be replaced when dependencies are built.
