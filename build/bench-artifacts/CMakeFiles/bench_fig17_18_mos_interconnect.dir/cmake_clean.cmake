file(REMOVE_RECURSE
  "../bench/bench_fig17_18_mos_interconnect"
  "../bench/bench_fig17_18_mos_interconnect.pdb"
  "CMakeFiles/bench_fig17_18_mos_interconnect.dir/bench_fig17_18_mos_interconnect.cpp.o"
  "CMakeFiles/bench_fig17_18_mos_interconnect.dir/bench_fig17_18_mos_interconnect.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_18_mos_interconnect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
