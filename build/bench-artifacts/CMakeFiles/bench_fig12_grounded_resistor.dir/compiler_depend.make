# Empty compiler generated dependencies file for bench_fig12_grounded_resistor.
# This may be replaced when dependencies are built.
