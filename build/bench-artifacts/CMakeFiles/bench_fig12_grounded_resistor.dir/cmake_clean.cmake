file(REMOVE_RECURSE
  "../bench/bench_fig12_grounded_resistor"
  "../bench/bench_fig12_grounded_resistor.pdb"
  "CMakeFiles/bench_fig12_grounded_resistor.dir/bench_fig12_grounded_resistor.cpp.o"
  "CMakeFiles/bench_fig12_grounded_resistor.dir/bench_fig12_grounded_resistor.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_grounded_resistor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
