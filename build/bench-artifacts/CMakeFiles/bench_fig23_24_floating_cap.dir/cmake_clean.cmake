file(REMOVE_RECURSE
  "../bench/bench_fig23_24_floating_cap"
  "../bench/bench_fig23_24_floating_cap.pdb"
  "CMakeFiles/bench_fig23_24_floating_cap.dir/bench_fig23_24_floating_cap.cpp.o"
  "CMakeFiles/bench_fig23_24_floating_cap.dir/bench_fig23_24_floating_cap.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig23_24_floating_cap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
