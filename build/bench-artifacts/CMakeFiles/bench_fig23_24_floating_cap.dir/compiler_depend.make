# Empty compiler generated dependencies file for bench_fig23_24_floating_cap.
# This may be replaced when dependencies are built.
