# Empty dependencies file for bench_fig26_27_rlc_underdamped.
# This may be replaced when dependencies are built.
