file(REMOVE_RECURSE
  "../bench/bench_fig26_27_rlc_underdamped"
  "../bench/bench_fig26_27_rlc_underdamped.pdb"
  "CMakeFiles/bench_fig26_27_rlc_underdamped.dir/bench_fig26_27_rlc_underdamped.cpp.o"
  "CMakeFiles/bench_fig26_27_rlc_underdamped.dir/bench_fig26_27_rlc_underdamped.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig26_27_rlc_underdamped.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
