file(REMOVE_RECURSE
  "../bench/bench_treelink_moments"
  "../bench/bench_treelink_moments.pdb"
  "CMakeFiles/bench_treelink_moments.dir/bench_treelink_moments.cpp.o"
  "CMakeFiles/bench_treelink_moments.dir/bench_treelink_moments.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_treelink_moments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
