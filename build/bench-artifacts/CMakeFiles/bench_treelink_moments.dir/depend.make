# Empty dependencies file for bench_treelink_moments.
# This may be replaced when dependencies are built.
