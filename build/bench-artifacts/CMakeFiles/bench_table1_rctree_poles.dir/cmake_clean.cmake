file(REMOVE_RECURSE
  "../bench/bench_table1_rctree_poles"
  "../bench/bench_table1_rctree_poles.pdb"
  "CMakeFiles/bench_table1_rctree_poles.dir/bench_table1_rctree_poles.cpp.o"
  "CMakeFiles/bench_table1_rctree_poles.dir/bench_table1_rctree_poles.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_rctree_poles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
