# Empty dependencies file for bench_table1_rctree_poles.
# This may be replaced when dependencies are built.
