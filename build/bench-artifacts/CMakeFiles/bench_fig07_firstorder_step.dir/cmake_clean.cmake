file(REMOVE_RECURSE
  "../bench/bench_fig07_firstorder_step"
  "../bench/bench_fig07_firstorder_step.pdb"
  "CMakeFiles/bench_fig07_firstorder_step.dir/bench_fig07_firstorder_step.cpp.o"
  "CMakeFiles/bench_fig07_firstorder_step.dir/bench_fig07_firstorder_step.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_firstorder_step.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
