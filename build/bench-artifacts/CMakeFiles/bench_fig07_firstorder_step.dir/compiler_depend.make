# Empty compiler generated dependencies file for bench_fig07_firstorder_step.
# This may be replaced when dependencies are built.
