file(REMOVE_RECURSE
  "../bench/bench_table2_rlc_poles"
  "../bench/bench_table2_rlc_poles.pdb"
  "CMakeFiles/bench_table2_rlc_poles.dir/bench_table2_rlc_poles.cpp.o"
  "CMakeFiles/bench_table2_rlc_poles.dir/bench_table2_rlc_poles.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_rlc_poles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
