# Empty compiler generated dependencies file for bench_table2_rlc_poles.
# This may be replaced when dependencies are built.
