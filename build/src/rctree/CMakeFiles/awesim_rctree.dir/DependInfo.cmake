
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rctree/rctree.cpp" "src/rctree/CMakeFiles/awesim_rctree.dir/rctree.cpp.o" "gcc" "src/rctree/CMakeFiles/awesim_rctree.dir/rctree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/circuit/CMakeFiles/awesim_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/awesim_la.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
