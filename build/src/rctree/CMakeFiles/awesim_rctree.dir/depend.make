# Empty dependencies file for awesim_rctree.
# This may be replaced when dependencies are built.
