file(REMOVE_RECURSE
  "libawesim_rctree.a"
)
