file(REMOVE_RECURSE
  "CMakeFiles/awesim_rctree.dir/rctree.cpp.o"
  "CMakeFiles/awesim_rctree.dir/rctree.cpp.o.d"
  "libawesim_rctree.a"
  "libawesim_rctree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/awesim_rctree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
