file(REMOVE_RECURSE
  "libawesim_mna.a"
)
