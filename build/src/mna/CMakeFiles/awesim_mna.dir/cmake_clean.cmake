file(REMOVE_RECURSE
  "CMakeFiles/awesim_mna.dir/system.cpp.o"
  "CMakeFiles/awesim_mna.dir/system.cpp.o.d"
  "libawesim_mna.a"
  "libawesim_mna.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/awesim_mna.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
