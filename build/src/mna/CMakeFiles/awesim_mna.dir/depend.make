# Empty dependencies file for awesim_mna.
# This may be replaced when dependencies are built.
