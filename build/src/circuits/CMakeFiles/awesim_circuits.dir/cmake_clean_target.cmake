file(REMOVE_RECURSE
  "libawesim_circuits.a"
)
