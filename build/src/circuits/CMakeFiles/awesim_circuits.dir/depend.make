# Empty dependencies file for awesim_circuits.
# This may be replaced when dependencies are built.
