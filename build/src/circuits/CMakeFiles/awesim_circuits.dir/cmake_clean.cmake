file(REMOVE_RECURSE
  "CMakeFiles/awesim_circuits.dir/paper_circuits.cpp.o"
  "CMakeFiles/awesim_circuits.dir/paper_circuits.cpp.o.d"
  "libawesim_circuits.a"
  "libawesim_circuits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/awesim_circuits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
