file(REMOVE_RECURSE
  "CMakeFiles/awesim_treelink.dir/treelink.cpp.o"
  "CMakeFiles/awesim_treelink.dir/treelink.cpp.o.d"
  "libawesim_treelink.a"
  "libawesim_treelink.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/awesim_treelink.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
