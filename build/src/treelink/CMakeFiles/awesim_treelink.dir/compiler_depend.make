# Empty compiler generated dependencies file for awesim_treelink.
# This may be replaced when dependencies are built.
