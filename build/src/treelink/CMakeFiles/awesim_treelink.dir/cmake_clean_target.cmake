file(REMOVE_RECURSE
  "libawesim_treelink.a"
)
