# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("la")
subdirs("circuit")
subdirs("netlist")
subdirs("mna")
subdirs("waveform")
subdirs("rctree")
subdirs("sim")
subdirs("core")
subdirs("circuits")
subdirs("timing")
subdirs("treelink")
