
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/engine.cpp" "src/core/CMakeFiles/awesim_core.dir/engine.cpp.o" "gcc" "src/core/CMakeFiles/awesim_core.dir/engine.cpp.o.d"
  "/root/repo/src/core/error.cpp" "src/core/CMakeFiles/awesim_core.dir/error.cpp.o" "gcc" "src/core/CMakeFiles/awesim_core.dir/error.cpp.o.d"
  "/root/repo/src/core/moments.cpp" "src/core/CMakeFiles/awesim_core.dir/moments.cpp.o" "gcc" "src/core/CMakeFiles/awesim_core.dir/moments.cpp.o.d"
  "/root/repo/src/core/pade.cpp" "src/core/CMakeFiles/awesim_core.dir/pade.cpp.o" "gcc" "src/core/CMakeFiles/awesim_core.dir/pade.cpp.o.d"
  "/root/repo/src/core/transfer.cpp" "src/core/CMakeFiles/awesim_core.dir/transfer.cpp.o" "gcc" "src/core/CMakeFiles/awesim_core.dir/transfer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mna/CMakeFiles/awesim_mna.dir/DependInfo.cmake"
  "/root/repo/build/src/waveform/CMakeFiles/awesim_waveform.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/awesim_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/awesim_la.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
