file(REMOVE_RECURSE
  "CMakeFiles/awesim_core.dir/engine.cpp.o"
  "CMakeFiles/awesim_core.dir/engine.cpp.o.d"
  "CMakeFiles/awesim_core.dir/error.cpp.o"
  "CMakeFiles/awesim_core.dir/error.cpp.o.d"
  "CMakeFiles/awesim_core.dir/moments.cpp.o"
  "CMakeFiles/awesim_core.dir/moments.cpp.o.d"
  "CMakeFiles/awesim_core.dir/pade.cpp.o"
  "CMakeFiles/awesim_core.dir/pade.cpp.o.d"
  "CMakeFiles/awesim_core.dir/transfer.cpp.o"
  "CMakeFiles/awesim_core.dir/transfer.cpp.o.d"
  "libawesim_core.a"
  "libawesim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/awesim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
