file(REMOVE_RECURSE
  "libawesim_core.a"
)
