# Empty dependencies file for awesim_core.
# This may be replaced when dependencies are built.
