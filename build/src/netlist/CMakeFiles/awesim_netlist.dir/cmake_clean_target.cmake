file(REMOVE_RECURSE
  "libawesim_netlist.a"
)
