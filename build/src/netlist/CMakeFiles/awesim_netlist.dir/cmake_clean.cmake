file(REMOVE_RECURSE
  "CMakeFiles/awesim_netlist.dir/parser.cpp.o"
  "CMakeFiles/awesim_netlist.dir/parser.cpp.o.d"
  "libawesim_netlist.a"
  "libawesim_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/awesim_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
