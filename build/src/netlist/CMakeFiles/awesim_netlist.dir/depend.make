# Empty dependencies file for awesim_netlist.
# This may be replaced when dependencies are built.
