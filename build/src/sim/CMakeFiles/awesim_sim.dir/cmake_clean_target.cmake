file(REMOVE_RECURSE
  "libawesim_sim.a"
)
