file(REMOVE_RECURSE
  "CMakeFiles/awesim_sim.dir/transient.cpp.o"
  "CMakeFiles/awesim_sim.dir/transient.cpp.o.d"
  "libawesim_sim.a"
  "libawesim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/awesim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
