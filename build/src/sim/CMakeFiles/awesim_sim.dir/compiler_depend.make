# Empty compiler generated dependencies file for awesim_sim.
# This may be replaced when dependencies are built.
