
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/la/eig.cpp" "src/la/CMakeFiles/awesim_la.dir/eig.cpp.o" "gcc" "src/la/CMakeFiles/awesim_la.dir/eig.cpp.o.d"
  "/root/repo/src/la/lu.cpp" "src/la/CMakeFiles/awesim_la.dir/lu.cpp.o" "gcc" "src/la/CMakeFiles/awesim_la.dir/lu.cpp.o.d"
  "/root/repo/src/la/poly.cpp" "src/la/CMakeFiles/awesim_la.dir/poly.cpp.o" "gcc" "src/la/CMakeFiles/awesim_la.dir/poly.cpp.o.d"
  "/root/repo/src/la/sparse.cpp" "src/la/CMakeFiles/awesim_la.dir/sparse.cpp.o" "gcc" "src/la/CMakeFiles/awesim_la.dir/sparse.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
