file(REMOVE_RECURSE
  "libawesim_la.a"
)
