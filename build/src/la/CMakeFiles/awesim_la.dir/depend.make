# Empty dependencies file for awesim_la.
# This may be replaced when dependencies are built.
