file(REMOVE_RECURSE
  "CMakeFiles/awesim_la.dir/eig.cpp.o"
  "CMakeFiles/awesim_la.dir/eig.cpp.o.d"
  "CMakeFiles/awesim_la.dir/lu.cpp.o"
  "CMakeFiles/awesim_la.dir/lu.cpp.o.d"
  "CMakeFiles/awesim_la.dir/poly.cpp.o"
  "CMakeFiles/awesim_la.dir/poly.cpp.o.d"
  "CMakeFiles/awesim_la.dir/sparse.cpp.o"
  "CMakeFiles/awesim_la.dir/sparse.cpp.o.d"
  "libawesim_la.a"
  "libawesim_la.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/awesim_la.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
