file(REMOVE_RECURSE
  "libawesim_waveform.a"
)
