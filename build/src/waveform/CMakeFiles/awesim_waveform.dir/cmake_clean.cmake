file(REMOVE_RECURSE
  "CMakeFiles/awesim_waveform.dir/waveform.cpp.o"
  "CMakeFiles/awesim_waveform.dir/waveform.cpp.o.d"
  "libawesim_waveform.a"
  "libawesim_waveform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/awesim_waveform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
