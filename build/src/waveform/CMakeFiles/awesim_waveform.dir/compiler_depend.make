# Empty compiler generated dependencies file for awesim_waveform.
# This may be replaced when dependencies are built.
