file(REMOVE_RECURSE
  "CMakeFiles/awesim_circuit.dir/circuit.cpp.o"
  "CMakeFiles/awesim_circuit.dir/circuit.cpp.o.d"
  "CMakeFiles/awesim_circuit.dir/waveform_spec.cpp.o"
  "CMakeFiles/awesim_circuit.dir/waveform_spec.cpp.o.d"
  "libawesim_circuit.a"
  "libawesim_circuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/awesim_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
