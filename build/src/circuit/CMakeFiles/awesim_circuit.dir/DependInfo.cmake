
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/circuit/circuit.cpp" "src/circuit/CMakeFiles/awesim_circuit.dir/circuit.cpp.o" "gcc" "src/circuit/CMakeFiles/awesim_circuit.dir/circuit.cpp.o.d"
  "/root/repo/src/circuit/waveform_spec.cpp" "src/circuit/CMakeFiles/awesim_circuit.dir/waveform_spec.cpp.o" "gcc" "src/circuit/CMakeFiles/awesim_circuit.dir/waveform_spec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
