file(REMOVE_RECURSE
  "libawesim_circuit.a"
)
