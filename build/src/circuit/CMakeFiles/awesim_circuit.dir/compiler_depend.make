# Empty compiler generated dependencies file for awesim_circuit.
# This may be replaced when dependencies are built.
