file(REMOVE_RECURSE
  "CMakeFiles/awesim_timing.dir/analyzer.cpp.o"
  "CMakeFiles/awesim_timing.dir/analyzer.cpp.o.d"
  "libawesim_timing.a"
  "libawesim_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/awesim_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
