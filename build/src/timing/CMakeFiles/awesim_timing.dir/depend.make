# Empty dependencies file for awesim_timing.
# This may be replaced when dependencies are built.
