file(REMOVE_RECURSE
  "libawesim_timing.a"
)
